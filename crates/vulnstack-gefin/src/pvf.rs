//! Architecture-level (PVF) fault-injection campaigns on the functional
//! full-system core.
//!
//! Faults are persistent single-bit flips in *architecturally visible*
//! state belonging to the program flow (paper §II.B): registers and
//! touched memory for the WD population, operand/immediate fields of
//! executed instructions for WOI, opcode/control-flow fields for WI.
//! Kernel instructions executed on behalf of the program are part of the
//! population — the key visibility difference from SVF.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vulnstack_core::effects::{FaultEffect, Tally};
use vulnstack_core::journal::{fnv1a64, Fingerprint, JournalError, JournalOpts, ResumableCampaign};
use vulnstack_core::sched::Quarantine;
use vulnstack_core::sink::{self, RecordHandle, StreamOpts};
use vulnstack_core::ResumeStats;
use vulnstack_isa::fields::bits_of_class;
use vulnstack_isa::{BitClass, Reg};
use vulnstack_microarch::func::{FuncCore, PvfFault, PvfMutation};

use crate::prepare::FuncPrepared;

/// PVF fault-propagation-model population (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PvfMode {
    /// Wrong Data: registers and program-flow memory bytes.
    Wd,
    /// Wrong Operand or Immediate: operand fields of executed
    /// instructions.
    Woi,
    /// Wrong Instruction: opcode and control-flow fields of executed
    /// instructions.
    Wi,
}

impl PvfMode {
    /// All modes.
    pub const ALL: [PvfMode; 3] = [PvfMode::Wd, PvfMode::Woi, PvfMode::Wi];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            PvfMode::Wd => "WD",
            PvfMode::Woi => "WOI",
            PvfMode::Wi => "WI",
        }
    }
}

impl std::fmt::Display for PvfMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn classify_outcome(prep: &FuncPrepared, out: &vulnstack_microarch::SimOutcome) -> FaultEffect {
    FaultEffect::classify(
        out.status,
        &out.output,
        prep.golden.status,
        &prep.expected_output,
    )
}

/// Runs one WD injection: flip a register or program-flow memory bit at a
/// random dynamic instant.
fn run_wd(prep: &FuncPrepared, rng: &mut StdRng) -> FaultEffect {
    let at_instr = rng.gen_range(0..prep.golden.instrs);
    let xlen = prep.isa.xlen() as u64;
    let reg_bits = prep.isa.num_regs() as u64 * xlen;
    let mem_bits = prep.profile.touched_bytes.len() as u64 * 8;
    // The WD population splits evenly between the architectural register
    // file and loaded/stored data (PVF studies in the literature centre on
    // registers; weighting purely by bit count would drown them in memory
    // bits — see DESIGN.md).
    let use_reg = mem_bits == 0 || rng.gen_range(0..2) == 0;
    let mutation = if use_reg {
        let pick = rng.gen_range(0..reg_bits);
        PvfMutation::FlipReg {
            reg: Reg((pick / xlen) as u8),
            bit: (pick % xlen) as u8,
        }
    } else {
        let m = rng.gen_range(0..mem_bits);
        let idx = (m / 8) as usize % prep.profile.touched_bytes.len().max(1);
        PvfMutation::FlipMem {
            addr: prep.profile.touched_bytes[idx],
            bit: (m % 8) as u8,
        }
    };
    let out = FuncCore::new(&prep.image)
        .with_fault(PvfFault { at_instr, mutation })
        .run(prep.budget);
    classify_outcome(prep, &out)
}

/// Runs one WOI/WI injection: step to a random dynamic instruction, flip
/// a bit of the target class in its encoding (persistent text
/// corruption).
fn run_encoding(prep: &FuncPrepared, class: BitClass, rng: &mut StdRng) -> FaultEffect {
    // A few resampling attempts in case the chosen instruction has no bits
    // of the desired class (e.g. `syscall` has no operand bits).
    for _ in 0..16 {
        let k = rng.gen_range(0..prep.golden.instrs);
        let mut core = FuncCore::new(&prep.image);
        while core.icount() < k && core.step() {}
        if core.ended() {
            continue;
        }
        let pc = core.pc() as u32;
        let w = core.peek(pc, 4);
        let word = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        let candidates = bits_of_class(word, class);
        if candidates.is_empty() {
            continue;
        }
        let bit = candidates[rng.gen_range(0..candidates.len())];
        core.poke_bit(pc + bit / 8, (bit % 8) as u8);
        while !core.ended() && core.icount() < prep.budget {
            core.step();
        }
        let out = core.into_outcome();
        return classify_outcome(prep, &out);
    }
    // Could not place a fault of this class: architecturally masked.
    FaultEffect::Masked
}

/// Runs an architecture-level campaign of `n` faults in `mode`,
/// parallelised over `threads` workers with work stealing. Each fault is
/// seeded per-index, so the result is deterministic for a given `seed`
/// at any thread count.
pub fn pvf_campaign(
    prep: &FuncPrepared,
    mode: PvfMode,
    n: usize,
    seed: u64,
    threads: usize,
) -> Tally {
    pvf_campaign_metered(prep, mode, n, seed, threads, None)
}

/// [`pvf_campaign`] with optional campaign metrics: each injection is
/// recorded as a worker span in `metrics` (the functional engine has no
/// checkpoints, so no restore distances are recorded). Results are
/// identical to the unmetered campaign.
pub fn pvf_campaign_metered(
    prep: &FuncPrepared,
    mode: PvfMode,
    n: usize,
    seed: u64,
    threads: usize,
    metrics: Option<&vulnstack_core::trace::CampaignMetrics>,
) -> Tally {
    let indices: Vec<usize> = (0..n).collect();
    let order: Vec<usize> = (0..n).collect();
    vulnstack_core::sched::map_ordered_metered(
        &indices,
        &order,
        threads,
        |_, &i| run_indexed(prep, mode, seed, i),
        metrics,
    )
    .into_iter()
    .collect()
}

/// Runs one PVF injection for campaign index `i` (the per-index seeding
/// shared by the parallel and resumable campaign paths).
fn run_indexed(prep: &FuncPrepared, mode: PvfMode, seed: u64, i: usize) -> FaultEffect {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37).wrapping_add(i as u64));
    match mode {
        PvfMode::Wd => run_wd(prep, &mut rng),
        PvfMode::Woi => run_encoding(prep, BitClass::Operand, &mut rng),
        PvfMode::Wi => run_encoding(prep, BitClass::Instruction, &mut rng),
    }
}

/// Results of a resumable PVF campaign: the tally over completed
/// injections, the quarantined sites (excluded from the tally), and the
/// replay/execute accounting.
#[derive(Debug)]
pub struct PvfResumed {
    /// Tally over the completed injections.
    pub tally: Tally,
    /// Sites whose every injection attempt panicked.
    pub quarantined: Vec<Quarantine>,
    /// Resume accounting.
    pub stats: ResumeStats,
}

/// Journaled, crash-resumable [`pvf_campaign_metered`]: each settled
/// injection is appended durably to the journal at `opts.path`, and a
/// resume replays the journaled injections instantly, running only the
/// rest. The merged tally is identical to an uninterrupted campaign at
/// any thread count.
///
/// # Errors
///
/// Any [`JournalError`] (see
/// [`avf_campaign_resumable`](crate::avf::avf_campaign_resumable)).
pub fn pvf_campaign_resumable(
    prep: &FuncPrepared,
    mode: PvfMode,
    n: usize,
    seed: u64,
    threads: usize,
    opts: &JournalOpts<'_>,
    metrics: Option<&vulnstack_core::trace::CampaignMetrics>,
) -> Result<PvfResumed, JournalError> {
    let indices: Vec<usize> = (0..n).collect();
    let order: Vec<usize> = (0..n).collect();
    let fingerprint = Fingerprint {
        engine: "gefin-pvf".to_string(),
        workload: opts.workload.to_string(),
        config: prep.isa.name().to_string(),
        structure: "-".to_string(),
        seed,
        samples: n as u64,
        params: format!(
            "mode={};golden_instrs={};output={:016x}",
            mode.name(),
            prep.golden.instrs,
            fnv1a64(&prep.expected_output)
        ),
        version: crate::avf::RECORD_VERSION,
    };
    let resumed = ResumableCampaign {
        path: opts.path,
        fingerprint,
        mode: opts.mode,
        items: &indices,
        order: &order,
        threads,
        policy: opts.policy,
        meta: &[],
    }
    .run(
        |_, &i| run_indexed(prep, mode, seed, i),
        |e| e.name().to_string(),
        FaultEffect::from_name,
        metrics,
    )?;
    Ok(PvfResumed {
        tally: resumed.records().into_iter().copied().collect(),
        quarantined: resumed.quarantined().into_iter().cloned().collect(),
        stats: resumed.stats,
    })
}

/// Results of a streaming PVF campaign: the tally accumulated effect by
/// effect in the sink fold, never a collected outcome vector.
#[derive(Debug)]
pub struct PvfStreamed {
    /// Tally over the completed injections.
    pub tally: Tally,
    /// Sites whose every injection attempt panicked (journaled runs
    /// only).
    pub quarantined: Vec<Quarantine>,
    /// Handle to the on-disk record stream, when
    /// [`StreamOpts::spill`] was set.
    pub records: Option<RecordHandle>,
    /// Replay/execute accounting (all-executed for unjournaled runs).
    pub stats: ResumeStats,
}

/// Streaming, bounded-memory [`pvf_campaign_metered`] /
/// [`pvf_campaign_resumable`]: each settled injection flows through the
/// bounded sink channel into the tally fold (and, with `journal`, the
/// journal — same `gefin-pvf` fingerprint as the resumable path, so the
/// two can kill-and-resume each other's journals).
///
/// # Errors
///
/// Any [`JournalError`] (journaled runs), or spill-file I/O errors.
#[allow(clippy::too_many_arguments)]
pub fn pvf_campaign_streamed(
    prep: &FuncPrepared,
    mode: PvfMode,
    n: usize,
    seed: u64,
    threads: usize,
    journal: Option<&JournalOpts<'_>>,
    stream: StreamOpts<'_>,
    metrics: Option<&vulnstack_core::trace::CampaignMetrics>,
) -> Result<PvfStreamed, JournalError> {
    let indices: Vec<usize> = (0..n).collect();
    let order: Vec<usize> = (0..n).collect();
    let encode = |e: &FaultEffect| e.name().to_string();
    let mut tally = Tally::default();
    let mut fold = |_: u64, payload: &str| {
        if let Some(e) = FaultEffect::from_name(payload) {
            tally.add(e);
        }
    };
    let (quarantined, records, stats) = match journal {
        Some(opts) => {
            let fingerprint = Fingerprint {
                engine: "gefin-pvf".to_string(),
                workload: opts.workload.to_string(),
                config: prep.isa.name().to_string(),
                structure: "-".to_string(),
                seed,
                samples: n as u64,
                params: format!(
                    "mode={};golden_instrs={};output={:016x}",
                    mode.name(),
                    prep.golden.instrs,
                    fnv1a64(&prep.expected_output)
                ),
                version: crate::avf::RECORD_VERSION,
            };
            let out = ResumableCampaign {
                path: opts.path,
                fingerprint,
                mode: opts.mode,
                items: &indices,
                order: &order,
                threads,
                policy: opts.policy,
                meta: &[],
            }
            .run_streaming(
                stream,
                |_, &i| run_indexed(prep, mode, seed, i),
                encode,
                FaultEffect::from_name,
                &mut fold,
                metrics,
            )?;
            (out.quarantined, out.records, out.stats)
        }
        None => {
            let ((), summary) = sink::stream(None, stream, &mut fold, |handle| {
                vulnstack_core::sched::map_ordered_metered(
                    &indices,
                    &order,
                    threads,
                    |i, &k: &usize| {
                        handle.push_done(i as u64, encode(&run_indexed(prep, mode, seed, k)));
                    },
                    metrics,
                );
            })?;
            let stats = ResumeStats {
                executed: n,
                ..ResumeStats::default()
            };
            (summary.quarantined, summary.records, stats)
        }
    };
    Ok(PvfStreamed {
        tally,
        quarantined,
        records,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_isa::Isa;
    use vulnstack_workloads::WorkloadId;

    #[test]
    fn wd_campaign_runs_and_mixes() {
        let w = WorkloadId::Crc32.build();
        let prep = FuncPrepared::new(&w, Isa::Va64).unwrap();
        let t = pvf_campaign(&prep, PvfMode::Wd, 30, 3, 4);
        assert_eq!(t.total(), 30);
        // Architectural faults in the program flow are much more likely
        // to matter than raw hardware bits, but masking still exists.
        assert!(t.masked > 0 || t.sdc + t.crash > 0);
    }

    #[test]
    fn wi_faults_skew_toward_crashes() {
        let w = WorkloadId::Smooth.build();
        let prep = FuncPrepared::new(&w, Isa::Va64).unwrap();
        let wi = pvf_campaign(&prep, PvfMode::Wi, 40, 5, 4);
        assert_eq!(wi.total(), 40);
        // Opcode/control-flow corruption should produce a solid share of
        // crashes (invalid opcodes, wild jumps).
        assert!(wi.crash > 0, "{wi:?}");
    }

    #[test]
    fn campaign_deterministic_across_thread_counts() {
        let w = WorkloadId::Crc32.build();
        let prep = FuncPrepared::new(&w, Isa::Va32).unwrap();
        let a = pvf_campaign(&prep, PvfMode::Woi, 16, 9, 1);
        let b = pvf_campaign(&prep, PvfMode::Woi, 16, 9, 4);
        assert_eq!(a, b);
    }
}
