//! Microarchitecture-level fault-injection campaigns (AVF + HVF in one
//! pass).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vulnstack_core::effects::{FaultEffect, Tally};
use vulnstack_core::journal::{fnv1a64, Fingerprint, JournalError, JournalOpts, ResumableCampaign};
use vulnstack_core::sched::{self, Quarantine};
use vulnstack_core::sink::{self, RecordHandle, StreamOpts};
use vulnstack_core::stack::FpmDist;
use vulnstack_core::trace::CampaignMetrics;
use vulnstack_core::ResumeStats;
use vulnstack_microarch::lifetime::DEFAULT_EVENT_CAP;
use vulnstack_microarch::ooo::{FaultModel, Fpm, HwStructure};
use vulnstack_microarch::{FaultTrace, OooCore, RunStatus};

use crate::prepare::Prepared;
use crate::prune::{plan_model_sites, plan_sites, InjectionPlan, PruneStats, Pruner};

/// How an injection run reaches its injection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectEngine {
    /// Build a fresh core and simulate the whole fault-free prefix from
    /// cycle 0 (the un-accelerated reference path).
    FromScratch,
    /// Restore the nearest golden-run checkpoint at or before the
    /// injection cycle and simulate only the delta. Bit-identical
    /// results to [`InjectEngine::FromScratch`]; see
    /// `tests/checkpoint_equivalence.rs`.
    Checkpointed,
}

/// One injection's observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// Injection cycle.
    pub cycle: u64,
    /// Site index within the fault model's site space over the structure
    /// (flat bit for bit-granular models; see [`FaultModel::sites`]).
    pub bit: u64,
    /// The fault model injected.
    pub model: FaultModel,
    /// End-to-end fault effect (the AVF observation).
    pub effect: FaultEffect,
    /// First architectural manifestation (the HVF observation); `None`
    /// means the hardware masked the fault.
    pub fpm: Option<Fpm>,
    /// Cycle of the first manifestation (`None` while masked).
    pub fpm_cycle: Option<u64>,
}

/// One fault site of a model-aware campaign: where, when, and what kind
/// of fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSite {
    /// Injection cycle.
    pub cycle: u64,
    /// Site index within `model`'s site space over the structure.
    pub bit: u64,
    /// The fault model.
    pub model: FaultModel,
}

/// Aggregated results of one (workload, core, structure) campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AvfCampaignResult {
    /// Target structure.
    pub structure: HwStructure,
    /// Structure bit population.
    pub bits: u64,
    /// AVF tally over all injections.
    pub tally: Tally,
    /// FPM distribution over all injections (HVF view).
    pub fpm: FpmDist,
    /// Per-injection records.
    pub records: Vec<InjectionRecord>,
}

impl AvfCampaignResult {
    /// The structure's measured AVF.
    pub fn avf(&self) -> vulnstack_core::effects::VulnFactor {
        self.tally.vf()
    }

    /// The structure's measured HVF.
    pub fn hvf(&self) -> f64 {
        self.fpm.hvf()
    }
}

/// Runs one injection: advance to `cycle` (warm-started from the nearest
/// golden checkpoint), flip `bit`, run to completion, classify.
pub fn run_one(prep: &Prepared, structure: HwStructure, cycle: u64, bit: u64) -> InjectionRecord {
    run_one_with(prep, structure, cycle, bit, InjectEngine::Checkpointed)
}

/// [`run_one`] under an explicit fault model (see
/// [`vulnstack_microarch::OooCore::inject_model`] for the per-model
/// injection semantics).
pub fn run_one_model(prep: &Prepared, structure: HwStructure, site: ModelSite) -> InjectionRecord {
    run_one_inner(
        prep,
        structure,
        site.cycle,
        site.bit,
        site.model,
        InjectEngine::Checkpointed,
        None,
        None,
    )
    .0
}

/// [`run_one`] with an explicit prefix engine.
pub fn run_one_with(
    prep: &Prepared,
    structure: HwStructure,
    cycle: u64,
    bit: u64,
    engine: InjectEngine,
) -> InjectionRecord {
    run_one_inner(
        prep,
        structure,
        cycle,
        bit,
        FaultModel::BitFlip,
        engine,
        None,
        None,
    )
    .0
}

/// [`run_one_with`] with fault-lifetime tracing enabled: also returns the
/// event trace of the injection (ring capacity `cap`). The record is
/// identical to the untraced run.
pub fn run_one_traced(
    prep: &Prepared,
    structure: HwStructure,
    cycle: u64,
    bit: u64,
    engine: InjectEngine,
    cap: usize,
) -> (InjectionRecord, Option<FaultTrace>) {
    run_one_inner(
        prep,
        structure,
        cycle,
        bit,
        FaultModel::BitFlip,
        engine,
        Some(cap),
        None,
    )
}

/// The shared injection runner: optional lifetime tracing, optional
/// campaign-metrics recording. Tracing and metrics never influence the
/// returned record (asserted by `tests/trace_reconciliation.rs` and the
/// engine-equivalence test).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_one_inner(
    prep: &Prepared,
    structure: HwStructure,
    cycle: u64,
    bit: u64,
    model: FaultModel,
    engine: InjectEngine,
    trace_cap: Option<usize>,
    metrics: Option<&CampaignMetrics>,
) -> (InjectionRecord, Option<FaultTrace>) {
    let mut core = match engine {
        InjectEngine::FromScratch => OooCore::new(&prep.cfg, &prep.image),
        InjectEngine::Checkpointed => prep.checkpoints.restore(cycle),
    };
    if let Some(m) = metrics {
        // Restore distance: cycles of fault-free prefix this run must
        // re-simulate. FromScratch always pays the full prefix.
        m.record_restore_distance(match engine {
            InjectEngine::FromScratch => cycle,
            InjectEngine::Checkpointed => prep.checkpoints.restore_distance(cycle),
        });
    }
    core.run_until(cycle);
    if let Some(cap) = trace_cap {
        core.enable_fault_trace(cap);
    }
    core.inject_model(structure, bit, model);
    // Run in slices; once every corrupted copy is gone and nothing
    // tainted is in flight, the rest of the run is identical to the
    // golden run, so it can be classified Masked without simulating it.
    // Slices grow exponentially: most masked faults go extinct within a
    // few hundred cycles of injection, so checking early bounds the
    // wasted post-extinction simulation, while the doubling keeps scan
    // overhead negligible for long-lived faults. The schedule is
    // engine-independent, so both engines classify every site
    // identically.
    let mut slice = 256u64;
    loop {
        let next = (core.cycle() + slice).min(prep.budget);
        slice = (slice * 2).min(4_096);
        core.run_until(next);
        if core.ended() || core.cycle() >= prep.budget {
            break;
        }
        if core.fault_extinct() {
            if let Some(m) = metrics {
                m.record_extinct_early();
            }
            core.note_fault_extinct();
            let trace = core.fault_trace().cloned();
            return (
                InjectionRecord {
                    cycle,
                    bit,
                    model,
                    effect: FaultEffect::Masked,
                    fpm: None,
                    fpm_cycle: None,
                },
                trace,
            );
        }
    }
    let out = core.finish();
    if let Some(m) = metrics {
        if out.sim.status == RunStatus::Timeout {
            m.record_watchdog_expiry();
        }
    }
    let effect = FaultEffect::classify(
        out.sim.status,
        &out.sim.output,
        prep.golden.status,
        &prep.expected_output,
    );
    (
        InjectionRecord {
            cycle,
            bit,
            model,
            effect,
            fpm: out.fpm,
            fpm_cycle: out.fpm_cycle,
        },
        out.ftrace,
    )
}

/// Runs a campaign of `n` uniformly-sampled single-bit faults in
/// `structure`, parallelised over `threads` workers with work stealing.
/// Deterministic for a given `seed`.
pub fn avf_campaign(
    prep: &Prepared,
    structure: HwStructure,
    n: usize,
    seed: u64,
    threads: usize,
) -> AvfCampaignResult {
    avf_campaign_with(
        prep,
        structure,
        n,
        seed,
        threads,
        InjectEngine::Checkpointed,
    )
}

/// [`avf_campaign`] with an explicit prefix engine. Both engines produce
/// bit-identical records for the same seed.
pub fn avf_campaign_with(
    prep: &Prepared,
    structure: HwStructure,
    n: usize,
    seed: u64,
    threads: usize,
    engine: InjectEngine,
) -> AvfCampaignResult {
    avf_campaign_metered(prep, structure, n, seed, threads, engine, None)
}

/// Draws the campaign's fault sites — `(cycle, bit)` pairs, uniformly
/// sampled over the golden run and the structure's bit population — from
/// one seeded stream, so the sample set is independent of the thread
/// count. `avf_campaign(…, seed, …)` injects exactly these sites in this
/// (sampling) order; index `k` here is site `k` of the campaign, which is
/// how `vulnstack trace --site k` replays a specific campaign injection.
pub fn draw_sites(prep: &Prepared, structure: HwStructure, n: usize, seed: u64) -> Vec<(u64, u64)> {
    let bits = structure.bits(&prep.cfg);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(1..=prep.golden.cycles),
                rng.gen_range(0..bits),
            )
        })
        .collect()
}

/// Canonical form of a fault-model set: deduplicated, in
/// [`FaultModel::ALL`] order, restricted to models that apply to
/// `structure`. Campaigns, fingerprints, and reports all use this order
/// so the same set always has the same identity.
pub fn canonical_models(models: &[FaultModel], structure: HwStructure) -> Vec<FaultModel> {
    FaultModel::ALL
        .into_iter()
        .filter(|m| models.contains(m) && m.applies_to(structure))
        .collect()
}

/// Draws `n` `(cycle, bit, model)` fault sites over a model set. With
/// the single legacy model `[BitFlip]` this is exactly [`draw_sites`]
/// with the model tagged on — same RNG stream, same sites — so model
/// threading is a no-op for legacy campaigns. With multiple models each
/// site draws its model uniformly, then a site index over that model's
/// own site space.
pub fn draw_model_sites(
    prep: &Prepared,
    structure: HwStructure,
    n: usize,
    seed: u64,
    models: &[FaultModel],
) -> Vec<ModelSite> {
    let models = canonical_models(models, structure);
    assert!(!models.is_empty(), "no fault model applies to {structure}");
    if models == [FaultModel::BitFlip] {
        return draw_sites(prep, structure, n, seed)
            .into_iter()
            .map(|(cycle, bit)| ModelSite {
                cycle,
                bit,
                model: FaultModel::BitFlip,
            })
            .collect();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    (0..n)
        .map(|_| {
            let model = models[rng.gen_range(0..models.len())];
            let cycle = rng.gen_range(1..=prep.golden.cycles);
            let bit = rng.gen_range(0..model.sites(structure, &prep.cfg));
            ModelSite { cycle, bit, model }
        })
        .collect()
}

/// [`avf_campaign_with`] with optional campaign metrics: per-worker
/// timeline spans, restore-distance histogram, extinct-early and watchdog
/// counters are recorded into `metrics`. Results are identical to the
/// unmetered campaign.
pub fn avf_campaign_metered(
    prep: &Prepared,
    structure: HwStructure,
    n: usize,
    seed: u64,
    threads: usize,
    engine: InjectEngine,
    metrics: Option<&CampaignMetrics>,
) -> AvfCampaignResult {
    let bits = structure.bits(&prep.cfg);
    let sites = draw_sites(prep, structure, n, seed);

    // Claim the sites in injection-cycle order (consecutive claims restore
    // from the same warm checkpoint); records come back in sampling order,
    // so the output is independent of both ordering and thread count.
    let order = sched::sort_order_by(&sites, |&(c, _)| c);
    let records: Vec<InjectionRecord> = sched::map_ordered_metered(
        &sites,
        &order,
        threads,
        |_, &(c, b)| {
            run_one_inner(
                prep,
                structure,
                c,
                b,
                FaultModel::BitFlip,
                engine,
                None,
                metrics,
            )
            .0
        },
        metrics,
    );

    collect_result(structure, bits, records)
}

/// [`avf_campaign_metered`] behind an [`InjectionPlan`]: materialises
/// the plan's sites and, for [`InjectionPlan::Pruned`], executes them
/// through the equivalence-class [`Pruner`] instead of one simulation
/// per site. Records are bit-identical to unpruned execution of the
/// same sites (`tests/prune_equivalence.rs`); the second return value is
/// the pruner's accounting when one ran.
pub fn avf_campaign_planned(
    prep: &Prepared,
    structure: HwStructure,
    plan: &InjectionPlan,
    threads: usize,
    metrics: Option<&CampaignMetrics>,
) -> (AvfCampaignResult, Option<PruneStats>) {
    let bits = structure.bits(&prep.cfg);
    let sites = plan_sites(prep, structure, plan);
    let order = sched::sort_order_by(&sites, |&(c, _)| c);
    if plan.is_pruned() {
        let pruner = Pruner::new(prep, structure);
        let records = sched::map_ordered_metered(
            &sites,
            &order,
            threads,
            |_, &(c, b)| pruner.run_site(c, b, metrics),
            metrics,
        );
        let stats = pruner.stats();
        (collect_result(structure, bits, records), Some(stats))
    } else {
        let records = sched::map_ordered_metered(
            &sites,
            &order,
            threads,
            |_, &(c, b)| {
                run_one_inner(
                    prep,
                    structure,
                    c,
                    b,
                    FaultModel::BitFlip,
                    InjectEngine::Checkpointed,
                    None,
                    metrics,
                )
                .0
            },
            metrics,
        );
        (collect_result(structure, bits, records), None)
    }
}

/// Model-aware planned campaign: executes a plan's `(site, model)`
/// pairs over `models`. [`InjectionPlan::Exhaustive`] enumerates every
/// pair (ARMORY-style) and — like [`InjectionPlan::Pruned`] — executes
/// through the model-aware [`Pruner`], whose per-model dead/equivalence
/// arguments keep exhaustive sweeps tractable; only
/// [`InjectionPlan::Sampled`] runs every site individually. Records are
/// bit-identical to unpruned execution of the same pairs.
pub fn avf_campaign_models(
    prep: &Prepared,
    structure: HwStructure,
    plan: &InjectionPlan,
    models: &[FaultModel],
    threads: usize,
    metrics: Option<&CampaignMetrics>,
) -> (AvfCampaignResult, Option<PruneStats>) {
    let bits = structure.bits(&prep.cfg);
    let sites = plan_model_sites(prep, structure, plan, models);
    let order = sched::sort_order_by(&sites, |s| s.cycle);
    if matches!(plan, InjectionPlan::Sampled { .. }) {
        let records = sched::map_ordered_metered(
            &sites,
            &order,
            threads,
            |_, s: &ModelSite| {
                run_one_inner(
                    prep,
                    structure,
                    s.cycle,
                    s.bit,
                    s.model,
                    InjectEngine::Checkpointed,
                    None,
                    metrics,
                )
                .0
            },
            metrics,
        );
        (collect_result(structure, bits, records), None)
    } else {
        let pruner = Pruner::new(prep, structure);
        let records = sched::map_ordered_metered(
            &sites,
            &order,
            threads,
            |_, s: &ModelSite| pruner.run_site_model(s.cycle, s.bit, s.model, metrics),
            metrics,
        );
        let stats = pruner.stats();
        (collect_result(structure, bits, records), Some(stats))
    }
}

/// [`avf_campaign_with`] with per-injection fault-lifetime traces: also
/// returns one [`FaultTrace`] per record, in the same (sampling) order.
/// The campaign result is identical to the untraced campaign — the
/// reconciliation test sums each trace's first-visible FPM and compares
/// against the campaign's [`FpmDist`].
pub fn avf_campaign_traced(
    prep: &Prepared,
    structure: HwStructure,
    n: usize,
    seed: u64,
    threads: usize,
    engine: InjectEngine,
    metrics: Option<&CampaignMetrics>,
) -> (AvfCampaignResult, Vec<FaultTrace>) {
    let bits = structure.bits(&prep.cfg);
    let sites = draw_sites(prep, structure, n, seed);
    let order = sched::sort_order_by(&sites, |&(c, _)| c);
    let pairs: Vec<(InjectionRecord, FaultTrace)> = sched::map_ordered_metered(
        &sites,
        &order,
        threads,
        |_, &(c, b)| {
            let (rec, trace) = run_one_inner(
                prep,
                structure,
                c,
                b,
                FaultModel::BitFlip,
                engine,
                Some(DEFAULT_EVENT_CAP),
                metrics,
            );
            (rec, trace.expect("tracing was enabled"))
        },
        metrics,
    );
    let (records, traces): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
    (collect_result(structure, bits, records), traces)
}

/// Journal record-schema version for gefin campaigns: bump when the
/// record encoding or the injection semantics change, so journals written
/// by an older engine are refused rather than silently mixed in.
/// Version 2: records gained a fault-model tag.
pub(crate) const RECORD_VERSION: u32 = 2;

/// Encodes an [`InjectionRecord`] as the journal payload
/// (`cycle,bit,effect,fpm,fpm_cycle,model`, with `-` for the
/// masked/`None` fields).
pub fn encode_record(r: &InjectionRecord) -> String {
    format!(
        "{},{},{},{},{},{}",
        r.cycle,
        r.bit,
        r.effect.name(),
        r.fpm.map_or("-", Fpm::name),
        r.fpm_cycle
            .map_or_else(|| "-".to_string(), |c| c.to_string()),
        r.model.name(),
    )
}

/// Inverse of [`encode_record`]; `None` marks a journal written by an
/// incompatible engine (surfaced as corruption, never silently dropped).
pub fn decode_record(s: &str) -> Option<InjectionRecord> {
    let mut it = s.split(',');
    let cycle = it.next()?.parse().ok()?;
    let bit = it.next()?.parse().ok()?;
    let effect = FaultEffect::from_name(it.next()?)?;
    let fpm = match it.next()? {
        "-" => None,
        name => Some(Fpm::from_name(name)?),
    };
    let fpm_cycle = match it.next()? {
        "-" => None,
        c => Some(c.parse().ok()?),
    };
    let model = FaultModel::from_name(it.next()?)?;
    if it.next().is_some() {
        return None;
    }
    Some(InjectionRecord {
        cycle,
        bit,
        model,
        effect,
        fpm,
        fpm_cycle,
    })
}

/// The model set's canonical fingerprint fragment (`+`-joined names in
/// [`FaultModel::ALL`] order). Part of the journal identity: resuming a
/// campaign whose model set changed draws different sites and must be
/// refused, not silently mixed.
fn models_fragment(models: &[FaultModel]) -> String {
    let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
    names.join("+")
}

fn avf_fingerprint(
    prep: &Prepared,
    structure: HwStructure,
    n: usize,
    seed: u64,
    workload: &str,
    models: &[FaultModel],
) -> Fingerprint {
    Fingerprint {
        engine: "gefin-avf".to_string(),
        workload: workload.to_string(),
        config: prep.cfg.model.name().to_string(),
        structure: structure.name().to_string(),
        seed,
        samples: n as u64,
        // Tie the identity to the actual golden run, not just the
        // workload's name: a same-named workload whose input or compiled
        // image changed draws different sites and must be refused.
        params: format!(
            "golden_cycles={};output={:016x};models={}",
            prep.golden.cycles,
            fnv1a64(&prep.expected_output),
            models_fragment(models),
        ),
        version: RECORD_VERSION,
    }
}

/// Results of a resumable AVF campaign: the aggregate over completed
/// records, the quarantined sites (excluded from the aggregate), and the
/// replay/execute accounting.
#[derive(Debug)]
pub struct AvfResumed {
    /// Aggregate over the completed records.
    pub result: AvfCampaignResult,
    /// Sites whose every injection attempt panicked.
    pub quarantined: Vec<Quarantine>,
    /// Resume accounting (replayed vs executed, respawns, torn bytes).
    pub stats: ResumeStats,
}

/// Journaled, crash-resumable [`avf_campaign_metered`]: every settled
/// site is appended durably to the journal at `opts.path` before the
/// worker claims its next site, a panicking site degrades to a
/// quarantine record instead of killing the campaign, and resuming
/// replays the journal's sites instantly and runs only the rest. The
/// merged records are bit-identical to an uninterrupted run at any
/// thread count (`tests/resume_equivalence.rs`).
///
/// # Errors
///
/// Any [`JournalError`]: filesystem failures, a missing journal in
/// [`vulnstack_core::ResumeMode::ResumeRequired`], a fingerprint
/// mismatch against a journal from a different campaign, or a corrupt
/// journal body.
pub fn avf_campaign_resumable(
    prep: &Prepared,
    structure: HwStructure,
    n: usize,
    seed: u64,
    threads: usize,
    opts: &JournalOpts<'_>,
    metrics: Option<&CampaignMetrics>,
) -> Result<AvfResumed, JournalError> {
    let bits = structure.bits(&prep.cfg);
    let sites = draw_sites(prep, structure, n, seed);
    let order = sched::sort_order_by(&sites, |&(c, _)| c);
    let resumed = ResumableCampaign {
        path: opts.path,
        fingerprint: avf_fingerprint(
            prep,
            structure,
            n,
            seed,
            opts.workload,
            &[FaultModel::BitFlip],
        ),
        mode: opts.mode,
        items: &sites,
        order: &order,
        threads,
        policy: opts.policy,
        meta: &[],
    }
    .run(
        |_, &(c, b)| {
            run_one_inner(
                prep,
                structure,
                c,
                b,
                FaultModel::BitFlip,
                InjectEngine::Checkpointed,
                None,
                metrics,
            )
            .0
        },
        encode_record,
        decode_record,
        metrics,
    )?;
    let records: Vec<InjectionRecord> = resumed.records().into_iter().copied().collect();
    let quarantined: Vec<Quarantine> = resumed.quarantined().into_iter().cloned().collect();
    Ok(AvfResumed {
        result: collect_result(structure, bits, records),
        quarantined,
        stats: resumed.stats,
    })
}

/// [`avf_campaign_resumable`] behind an [`InjectionPlan`]. The plan is
/// part of the journal's identity (`params` carries its name, and an
/// exhaustive plan its fixed cycle), so a journal written under one plan
/// refuses a resume under another. A pruned resume additionally journals
/// the class-table digest as `class-table` metadata: the table is
/// rebuilt deterministically on resume, and any disagreement (a changed
/// classifier, workload image, or golden run) is refused with both
/// digests named rather than silently re-pruned
/// ([`JournalError::MetaMismatch`]).
///
/// # Errors
///
/// Any [`JournalError`] (see [`avf_campaign_resumable`]), plus
/// [`JournalError::MetaMismatch`] when the journal's class-table digest
/// disagrees with the rebuilt table's.
pub fn avf_campaign_resumable_planned(
    prep: &Prepared,
    structure: HwStructure,
    plan: &InjectionPlan,
    threads: usize,
    opts: &JournalOpts<'_>,
    metrics: Option<&CampaignMetrics>,
) -> Result<(AvfResumed, Option<PruneStats>), JournalError> {
    let bits = structure.bits(&prep.cfg);
    let sites = plan_sites(prep, structure, plan);
    let order = sched::sort_order_by(&sites, |&(c, _)| c);
    let (seed, plan_detail) = match *plan {
        InjectionPlan::Exhaustive { cycle } => (0, format!("exhaustive@{cycle}")),
        InjectionPlan::Sampled { n: _, seed } => (seed, "sampled".to_string()),
        InjectionPlan::Pruned { n: _, seed } => (seed, "pruned".to_string()),
    };
    let mut fingerprint = avf_fingerprint(
        prep,
        structure,
        sites.len(),
        seed,
        opts.workload,
        &[FaultModel::BitFlip],
    );
    fingerprint.params.push_str(&format!(";plan={plan_detail}"));

    let pruner = plan.is_pruned().then(|| Pruner::new(prep, structure));
    let meta: Vec<(String, String)> = pruner
        .as_ref()
        .map(|p| {
            vec![(
                "class-table".to_string(),
                format!("fnv={:016x}", p.table().digest()),
            )]
        })
        .unwrap_or_default();

    let resumed = ResumableCampaign {
        path: opts.path,
        fingerprint,
        mode: opts.mode,
        items: &sites,
        order: &order,
        threads,
        policy: opts.policy,
        meta: &meta,
    }
    .run(
        |_, &(c, b)| match &pruner {
            Some(p) => p.run_site(c, b, metrics),
            None => {
                run_one_inner(
                    prep,
                    structure,
                    c,
                    b,
                    FaultModel::BitFlip,
                    InjectEngine::Checkpointed,
                    None,
                    metrics,
                )
                .0
            }
        },
        encode_record,
        decode_record,
        metrics,
    )?;
    let records: Vec<InjectionRecord> = resumed.records().into_iter().copied().collect();
    let quarantined: Vec<Quarantine> = resumed.quarantined().into_iter().cloned().collect();
    Ok((
        AvfResumed {
            result: collect_result(structure, bits, records),
            quarantined,
            stats: resumed.stats,
        },
        pruner.map(|p| p.stats()),
    ))
}

/// Model-aware [`avf_campaign_resumable_planned`]: journaled,
/// crash-resumable execution of a plan's `(site, model)` pairs. The
/// fingerprint covers the canonical model set (and the plan), so a
/// journal written under one model set refuses a resume under another;
/// records carry their model tag through the journal codec. Exhaustive
/// and pruned plans execute through the model-aware [`Pruner`].
///
/// # Errors
///
/// Any [`JournalError`] (see [`avf_campaign_resumable`]), plus
/// [`JournalError::MetaMismatch`] when the journal's class-table digest
/// disagrees with the rebuilt table's.
pub fn avf_campaign_models_resumable(
    prep: &Prepared,
    structure: HwStructure,
    plan: &InjectionPlan,
    models: &[FaultModel],
    threads: usize,
    opts: &JournalOpts<'_>,
    metrics: Option<&CampaignMetrics>,
) -> Result<(AvfResumed, Option<PruneStats>), JournalError> {
    let bits = structure.bits(&prep.cfg);
    let models = canonical_models(models, structure);
    let sites = plan_model_sites(prep, structure, plan, &models);
    let order = sched::sort_order_by(&sites, |s| s.cycle);
    let (seed, plan_detail) = match *plan {
        InjectionPlan::Exhaustive { cycle } => (0, format!("exhaustive@{cycle}")),
        InjectionPlan::Sampled { n: _, seed } => (seed, "sampled".to_string()),
        InjectionPlan::Pruned { n: _, seed } => (seed, "pruned".to_string()),
    };
    let mut fingerprint =
        avf_fingerprint(prep, structure, sites.len(), seed, opts.workload, &models);
    fingerprint.params.push_str(&format!(";plan={plan_detail}"));

    let pruner =
        (!matches!(plan, InjectionPlan::Sampled { .. })).then(|| Pruner::new(prep, structure));
    let meta: Vec<(String, String)> = pruner
        .as_ref()
        .map(|p| {
            vec![(
                "class-table".to_string(),
                format!("fnv={:016x}", p.table().digest()),
            )]
        })
        .unwrap_or_default();

    let resumed = ResumableCampaign {
        path: opts.path,
        fingerprint,
        mode: opts.mode,
        items: &sites,
        order: &order,
        threads,
        policy: opts.policy,
        meta: &meta,
    }
    .run(
        |_, s: &ModelSite| match &pruner {
            Some(p) => p.run_site_model(s.cycle, s.bit, s.model, metrics),
            None => {
                run_one_inner(
                    prep,
                    structure,
                    s.cycle,
                    s.bit,
                    s.model,
                    InjectEngine::Checkpointed,
                    None,
                    metrics,
                )
                .0
            }
        },
        encode_record,
        decode_record,
        metrics,
    )?;
    let records: Vec<InjectionRecord> = resumed.records().into_iter().copied().collect();
    let quarantined: Vec<Quarantine> = resumed.quarantined().into_iter().cloned().collect();
    Ok((
        AvfResumed {
            result: collect_result(structure, bits, records),
            quarantined,
            stats: resumed.stats,
        },
        pruner.map(|p| p.stats()),
    ))
}

/// Per-model outcome tallies of a model-aware campaign, in
/// [`FaultModel::ALL`] order; models with no records are omitted. The
/// ARMORY-style exhaustive report: one `(model, AVF tally, FPM
/// distribution)` row per injected model.
pub fn per_model_tallies(records: &[InjectionRecord]) -> Vec<(FaultModel, Tally, FpmDist)> {
    FaultModel::ALL
        .into_iter()
        .filter_map(|m| {
            let recs: Vec<&InjectionRecord> = records.iter().filter(|r| r.model == m).collect();
            if recs.is_empty() {
                return None;
            }
            let tally: Tally = recs.iter().map(|r| r.effect).collect();
            let mut fpm = FpmDist::new();
            for r in &recs {
                fpm.add(r.fpm);
            }
            Some((m, tally, fpm))
        })
        .collect()
}

fn collect_result(
    structure: HwStructure,
    bits: u64,
    records: Vec<InjectionRecord>,
) -> AvfCampaignResult {
    let tally: Tally = records.iter().map(|r| r.effect).collect();
    let mut fpm = FpmDist::new();
    for r in &records {
        fpm.add(r.fpm);
    }
    AvfCampaignResult {
        structure,
        bits,
        tally,
        fpm,
        records,
    }
}

/// Aggregates of one *streaming* campaign: everything the CLI tables
/// and JSON export need, accumulated record-by-record in the sink fold.
/// The `records` vector of [`AvfCampaignResult`] is replaced by an
/// optional on-disk [`RecordHandle`], so peak memory is bounded by the
/// sink channel regardless of campaign size.
#[derive(Debug)]
pub struct AvfStreamed {
    /// Target structure.
    pub structure: HwStructure,
    /// Structure bit population.
    pub bits: u64,
    /// AVF tally over all completed injections.
    pub tally: Tally,
    /// FPM distribution over all completed injections (HVF view).
    pub fpm: FpmDist,
    /// Per-model tallies in [`FaultModel::ALL`] order, models with no
    /// records omitted — the same shape [`per_model_tallies`] computes
    /// from an in-RAM record vector, accumulated incrementally here.
    pub per_model: Vec<(FaultModel, Tally, FpmDist)>,
    /// Handle to the on-disk record stream, when
    /// [`StreamOpts::spill`] was set.
    pub records: Option<RecordHandle>,
    /// Sites whose every injection attempt panicked (journaled runs
    /// only; the unjournaled path propagates panics like
    /// [`avf_campaign`]).
    pub quarantined: Vec<Quarantine>,
    /// Replay/execute accounting (all-executed for unjournaled runs).
    pub stats: ResumeStats,
}

impl AvfStreamed {
    /// The structure's measured AVF.
    pub fn avf(&self) -> vulnstack_core::effects::VulnFactor {
        self.tally.vf()
    }

    /// The structure's measured HVF.
    pub fn hvf(&self) -> f64 {
        self.fpm.hvf()
    }
}

/// Streaming tally accumulator: folds encoded records into the
/// aggregate and per-model tallies one payload at a time, never holding
/// more than one decoded record.
struct TallyAccum {
    tally: Tally,
    fpm: FpmDist,
    /// Indexed by position in [`FaultModel::ALL`]; the count
    /// distinguishes "no records" from "all-masked".
    per_model: Vec<(Tally, FpmDist, u64)>,
}

impl TallyAccum {
    fn new() -> TallyAccum {
        TallyAccum {
            tally: Tally::default(),
            fpm: FpmDist::new(),
            per_model: FaultModel::ALL
                .iter()
                .map(|_| (Tally::default(), FpmDist::new(), 0))
                .collect(),
        }
    }

    fn add_payload(&mut self, payload: &str) {
        // Payloads come from `encode_record` (fresh sites) or a
        // decode-validated journal replay, so this only skips on a
        // corrupt spill the journal layer already refused.
        if let Some(r) = decode_record(payload) {
            self.tally.add(r.effect);
            self.fpm.add(r.fpm);
            let k = FaultModel::ALL
                .iter()
                .position(|&m| m == r.model)
                .expect("every record model is in FaultModel::ALL");
            let slot = &mut self.per_model[k];
            slot.0.add(r.effect);
            slot.1.add(r.fpm);
            slot.2 += 1;
        }
    }

    fn finish(self) -> (Tally, FpmDist, Vec<(FaultModel, Tally, FpmDist)>) {
        let per_model = FaultModel::ALL
            .into_iter()
            .zip(self.per_model)
            .filter(|(_, (_, _, n))| *n > 0)
            .map(|(m, (t, f, _))| (m, t, f))
            .collect();
        (self.tally, self.fpm, per_model)
    }
}

/// Streaming, bounded-memory counterpart of the whole `avf_campaign_*`
/// family: one entry point dispatching exactly like the CLI. A
/// single-model sampled campaign keeps [`avf_campaign_resumable`]'s
/// journal fingerprint bit-for-bit (no plan suffix); a single-model
/// pruned campaign keeps [`avf_campaign_resumable_planned`]'s (plan
/// suffix + class-table metadata); multi-model or exhaustive campaigns
/// keep [`avf_campaign_models_resumable`]'s — so streamed and legacy
/// runs can kill-and-resume each other's journals.
///
/// Records are never collected: each settled site flows worker →
/// bounded sink channel → journal append (when `journal` is given) →
/// optional spill file → the tally fold. A full channel blocks the
/// workers (backpressure), so peak memory is bounded by
/// [`StreamOpts::channel_cap`] regardless of campaign size.
///
/// # Errors
///
/// Any [`JournalError`] (journaled runs: see
/// [`avf_campaign_models_resumable`]); spill-file I/O errors otherwise.
#[allow(clippy::too_many_arguments)]
pub fn avf_campaign_models_streamed(
    prep: &Prepared,
    structure: HwStructure,
    plan: &InjectionPlan,
    models: &[FaultModel],
    threads: usize,
    journal: Option<&JournalOpts<'_>>,
    stream: StreamOpts<'_>,
    metrics: Option<&CampaignMetrics>,
) -> Result<(AvfStreamed, Option<PruneStats>), JournalError> {
    let bits = structure.bits(&prep.cfg);
    let models = canonical_models(models, structure);
    let sites = plan_model_sites(prep, structure, plan, &models);
    let order = sched::sort_order_by(&sites, |s| s.cycle);
    let legacy =
        models == [FaultModel::BitFlip] && !matches!(plan, InjectionPlan::Exhaustive { .. });
    // Same pruner decisions as the legacy trio: a legacy campaign prunes
    // only under an explicitly pruned plan; the model-aware engine also
    // prunes exhaustive sweeps (that is what keeps them tractable).
    let use_pruner = if legacy {
        plan.is_pruned()
    } else {
        !matches!(plan, InjectionPlan::Sampled { .. })
    };
    let pruner = use_pruner.then(|| Pruner::new(prep, structure));
    let runner = |_: usize, s: &ModelSite| match &pruner {
        Some(p) => p.run_site_model(s.cycle, s.bit, s.model, metrics),
        None => {
            run_one_inner(
                prep,
                structure,
                s.cycle,
                s.bit,
                s.model,
                InjectEngine::Checkpointed,
                None,
                metrics,
            )
            .0
        }
    };

    let mut acc = TallyAccum::new();
    let (quarantined, records, stats) = match journal {
        Some(opts) => {
            let fingerprint = if legacy && matches!(plan, InjectionPlan::Sampled { .. }) {
                // The legacy sampled identity: no plan suffix.
                let InjectionPlan::Sampled { n, seed } = *plan else {
                    unreachable!("matched Sampled above")
                };
                avf_fingerprint(prep, structure, n, seed, opts.workload, &models)
            } else {
                let (seed, plan_detail) = match *plan {
                    InjectionPlan::Exhaustive { cycle } => (0, format!("exhaustive@{cycle}")),
                    InjectionPlan::Sampled { n: _, seed } => (seed, "sampled".to_string()),
                    InjectionPlan::Pruned { n: _, seed } => (seed, "pruned".to_string()),
                };
                let mut f =
                    avf_fingerprint(prep, structure, sites.len(), seed, opts.workload, &models);
                f.params.push_str(&format!(";plan={plan_detail}"));
                f
            };
            let meta: Vec<(String, String)> = pruner
                .as_ref()
                .map(|p| {
                    vec![(
                        "class-table".to_string(),
                        format!("fnv={:016x}", p.table().digest()),
                    )]
                })
                .unwrap_or_default();
            let out = ResumableCampaign {
                path: opts.path,
                fingerprint,
                mode: opts.mode,
                items: &sites,
                order: &order,
                threads,
                policy: opts.policy,
                meta: &meta,
            }
            .run_streaming(
                stream,
                runner,
                encode_record,
                decode_record,
                |_, payload| acc.add_payload(payload),
                metrics,
            )?;
            (out.quarantined, out.records, out.stats)
        }
        None => {
            let ((), summary) = sink::stream(
                None,
                stream,
                |_, payload| acc.add_payload(payload),
                |handle| {
                    sched::map_ordered_metered(
                        &sites,
                        &order,
                        threads,
                        |i, s: &ModelSite| {
                            handle.push_done(i as u64, encode_record(&runner(i, s)));
                        },
                        metrics,
                    );
                },
            )?;
            let stats = ResumeStats {
                executed: sites.len(),
                ..ResumeStats::default()
            };
            (summary.quarantined, summary.records, stats)
        }
    };
    let (tally, fpm, per_model) = acc.finish();
    Ok((
        AvfStreamed {
            structure,
            bits,
            tally,
            fpm,
            per_model,
            records,
            quarantined,
            stats,
        },
        pruner.map(|p| p.stats()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_microarch::CoreModel;
    use vulnstack_workloads::WorkloadId;

    #[test]
    fn campaign_is_deterministic_and_mixed() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let a = avf_campaign(&prep, HwStructure::RegisterFile, 24, 7, 4);
        let b = avf_campaign(&prep, HwStructure::RegisterFile, 24, 7, 2);
        assert_eq!(
            a.tally, b.tally,
            "same seed must give the same tally regardless of threads"
        );
        assert_eq!(
            a.records, b.records,
            "per-injection records must be independent of the thread count"
        );
        assert_eq!(a.tally.total(), 24);
        // The register file is mostly dead space: expect masking.
        assert!(a.tally.masked > 0);
    }

    #[test]
    fn l1d_faults_can_escape_or_corrupt() {
        // qsort writes its whole output array through L1d; faults there
        // have a fair chance of reaching the output.
        let w = WorkloadId::Qsort.build();
        let prep = Prepared::new(&w, CoreModel::A9).unwrap();
        let r = avf_campaign(&prep, HwStructure::L1d, 40, 11, 4);
        assert_eq!(r.tally.total(), 40);
        // HVF must be consistent with the FPM distribution.
        let visible = r.records.iter().filter(|x| x.fpm.is_some()).count() as f64;
        assert!((r.hvf() - visible / 40.0).abs() < 1e-9);
    }

    #[test]
    fn record_codec_roundtrips() {
        let recs = [
            InjectionRecord {
                cycle: 12,
                bit: 3,
                effect: FaultEffect::Masked,
                fpm: None,
                fpm_cycle: None,
                model: FaultModel::BitFlip,
            },
            InjectionRecord {
                cycle: 999,
                bit: 0,
                effect: FaultEffect::Sdc,
                fpm: Some(Fpm::Wd),
                fpm_cycle: Some(1004),
                model: FaultModel::ByteCorrupt,
            },
            InjectionRecord {
                cycle: 1,
                bit: u64::MAX,
                effect: FaultEffect::Crash,
                fpm: Some(Fpm::Esc),
                fpm_cycle: Some(0),
                model: FaultModel::StuckAt,
            },
        ];
        for r in recs {
            assert_eq!(decode_record(&encode_record(&r)), Some(r));
        }
        assert_eq!(decode_record("nonsense"), None);
        assert_eq!(decode_record("1,2,NotAnEffect,-,-,bit-flip"), None);
        assert_eq!(decode_record("1,2,SDC,-,-,not-a-model"), None);
        assert_eq!(decode_record("1,2,SDC,-,-,bit-flip,extra"), None);
    }

    #[test]
    fn different_seeds_differ() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let a = avf_campaign(&prep, HwStructure::Lsq, 16, 1, 4);
        let b = avf_campaign(&prep, HwStructure::Lsq, 16, 2, 4);
        let sites_a: Vec<_> = a.records.iter().map(|r| (r.cycle, r.bit)).collect();
        let sites_b: Vec<_> = b.records.iter().map(|r| (r.cycle, r.bit)).collect();
        assert_ne!(sites_a, sites_b);
    }
}
