//! Microarchitecture-level fault-injection campaigns (AVF + HVF in one
//! pass).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vulnstack_core::effects::{FaultEffect, Tally};
use vulnstack_core::stack::FpmDist;
use vulnstack_microarch::ooo::{Fpm, HwStructure};
use vulnstack_microarch::OooCore;

use crate::prepare::Prepared;

/// One injection's observation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// Injection cycle.
    pub cycle: u64,
    /// Flat bit index within the structure.
    pub bit: u64,
    /// End-to-end fault effect (the AVF observation).
    pub effect: FaultEffect,
    /// First architectural manifestation (the HVF observation); `None`
    /// means the hardware masked the fault.
    pub fpm: Option<Fpm>,
    /// Cycle of the first manifestation (`None` while masked).
    pub fpm_cycle: Option<u64>,
}

/// Aggregated results of one (workload, core, structure) campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AvfCampaignResult {
    /// Target structure.
    pub structure: HwStructure,
    /// Structure bit population.
    pub bits: u64,
    /// AVF tally over all injections.
    pub tally: Tally,
    /// FPM distribution over all injections (HVF view).
    pub fpm: FpmDist,
    /// Per-injection records.
    pub records: Vec<InjectionRecord>,
}

impl AvfCampaignResult {
    /// The structure's measured AVF.
    pub fn avf(&self) -> vulnstack_core::effects::VulnFactor {
        self.tally.vf()
    }

    /// The structure's measured HVF.
    pub fn hvf(&self) -> f64 {
        self.fpm.hvf()
    }
}

/// Runs one injection: advance to `cycle`, flip `bit`, run to completion,
/// classify.
pub fn run_one(prep: &Prepared, structure: HwStructure, cycle: u64, bit: u64) -> InjectionRecord {
    let mut core = OooCore::new(&prep.cfg, &prep.image);
    core.run_until(cycle);
    core.inject(structure, bit);
    // Run in slices; once every corrupted copy is gone and nothing
    // tainted is in flight, the rest of the run is identical to the
    // golden run, so it can be classified Masked without simulating it.
    loop {
        let next = (core.cycle() + 8_192).min(prep.budget);
        core.run_until(next);
        if core.ended() || core.cycle() >= prep.budget {
            break;
        }
        if core.fault_extinct() {
            return InjectionRecord {
                cycle,
                bit,
                effect: FaultEffect::Masked,
                fpm: None,
                fpm_cycle: None,
            };
        }
    }
    let out = core.finish();
    let effect = FaultEffect::classify(
        out.sim.status,
        &out.sim.output,
        prep.golden.status,
        &prep.expected_output,
    );
    InjectionRecord {
        cycle,
        bit,
        effect,
        fpm: out.fpm,
        fpm_cycle: out.fpm_cycle,
    }
}

/// Runs a campaign of `n` uniformly-sampled single-bit faults in
/// `structure`, parallelised over `threads` workers. Deterministic for a
/// given `seed`.
pub fn avf_campaign(
    prep: &Prepared,
    structure: HwStructure,
    n: usize,
    seed: u64,
    threads: usize,
) -> AvfCampaignResult {
    let bits = structure.bits(&prep.cfg);
    // Pre-draw all fault sites from one seeded stream so the sample set is
    // independent of the thread count.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let sites: Vec<(u64, u64)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(1..=prep.golden.cycles),
                rng.gen_range(0..bits),
            )
        })
        .collect();

    let threads = threads.max(1);
    let chunk = sites.len().div_ceil(threads);
    let mut records: Vec<InjectionRecord> = Vec::with_capacity(n);
    if threads == 1 || sites.len() < 8 {
        for &(c, b) in &sites {
            records.push(run_one(prep, structure, c, b));
        }
    } else {
        let results: Vec<Vec<InjectionRecord>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = sites
                .chunks(chunk.max(1))
                .map(|part| {
                    s.spawn(move |_| {
                        part.iter()
                            .map(|&(c, b)| run_one(prep, structure, c, b))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("injection worker panicked"))
                .collect()
        })
        .expect("campaign scope");
        for r in results {
            records.extend(r);
        }
    }

    let tally: Tally = records.iter().map(|r| r.effect).collect();
    let mut fpm = FpmDist::new();
    for r in &records {
        fpm.add(r.fpm);
    }
    AvfCampaignResult {
        structure,
        bits,
        tally,
        fpm,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_microarch::CoreModel;
    use vulnstack_workloads::WorkloadId;

    #[test]
    fn campaign_is_deterministic_and_mixed() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let a = avf_campaign(&prep, HwStructure::RegisterFile, 24, 7, 4);
        let b = avf_campaign(&prep, HwStructure::RegisterFile, 24, 7, 2);
        assert_eq!(
            a.tally, b.tally,
            "same seed must give the same tally regardless of threads"
        );
        assert_eq!(a.tally.total(), 24);
        // The register file is mostly dead space: expect masking.
        assert!(a.tally.masked > 0);
    }

    #[test]
    fn l1d_faults_can_escape_or_corrupt() {
        // qsort writes its whole output array through L1d; faults there
        // have a fair chance of reaching the output.
        let w = WorkloadId::Qsort.build();
        let prep = Prepared::new(&w, CoreModel::A9).unwrap();
        let r = avf_campaign(&prep, HwStructure::L1d, 40, 11, 4);
        assert_eq!(r.tally.total(), 40);
        // HVF must be consistent with the FPM distribution.
        let visible = r.records.iter().filter(|x| x.fpm.is_some()).count() as f64;
        assert!((r.hvf() - visible / 40.0).abs() < 1e-9);
    }

    #[test]
    fn different_seeds_differ() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let a = avf_campaign(&prep, HwStructure::Lsq, 16, 1, 4);
        let b = avf_campaign(&prep, HwStructure::Lsq, 16, 2, 4);
        let sites_a: Vec<_> = a.records.iter().map(|r| (r.cycle, r.bit)).collect();
        let sites_b: Vec<_> = b.records.iter().map(|r| (r.cycle, r.bit)).collect();
        assert_ne!(sites_a, sites_b);
    }
}
