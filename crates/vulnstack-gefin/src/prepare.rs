//! Experiment preparation: compile a workload for a core model, build the
//! system image, and take golden (fault-free) reference runs.

use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_isa::Isa;
use vulnstack_kernel::SystemImage;
use vulnstack_microarch::func::Profile;
use vulnstack_microarch::outcome::SimOutcome;
use vulnstack_microarch::snapshot::{self, CheckpointStore};
use vulnstack_microarch::{CoreConfig, CoreModel, FuncCore, OooCore, RunStatus};
use vulnstack_workloads::Workload;

/// Golden-run budget for the *functional* core, in dynamic
/// **instructions** ([`FuncCore::run`] counts instructions).
const FUNC_INSTR_BUDGET: u64 = 400_000_000;

/// Golden-run budget for the *cycle-level* core, in **cycles**
/// ([`OooCore::run`] counts cycles). Kept separate from
/// [`FUNC_INSTR_BUDGET`]: the two cores meter different units, and a
/// cycle budget must out-size an instruction budget by the worst-case
/// CPI to cover the same program.
const GOLDEN_CYCLE_BUDGET: u64 = 2_000_000_000;

/// Rejects a zero env-knob value with a stderr warning (zero would mean
/// "checkpoint never" / "keep no checkpoints", neither of which the
/// snapshot layer supports) — previously a `filter` dropped it silently.
fn nonzero_or_warn<T: PartialEq + Default + std::fmt::Display>(name: &str, v: T) -> Option<T> {
    if v == T::default() {
        eprintln!("warning: ignoring {name}=0: must be positive; using default");
        None
    } else {
        Some(v)
    }
}

/// Checkpoint interval (cycles) before adaptive doubling, overridable
/// with `VULNSTACK_CKPT_INTERVAL`. Malformed or zero values warn on
/// stderr and fall back.
fn checkpoint_interval() -> u64 {
    crate::env_knob::<u64>("VULNSTACK_CKPT_INTERVAL", "cycle interval")
        .and_then(|v| nonzero_or_warn("VULNSTACK_CKPT_INTERVAL", v))
        .unwrap_or(snapshot::DEFAULT_INTERVAL)
}

/// Checkpoint count cap (memory budget), overridable with
/// `VULNSTACK_CKPTS`. `VULNSTACK_CKPTS=1` keeps only the reset state,
/// which degrades every restore to a from-scratch run. Malformed or zero
/// values warn on stderr and fall back.
fn checkpoint_cap() -> usize {
    crate::env_knob::<usize>("VULNSTACK_CKPTS", "checkpoint count")
        .and_then(|v| nonzero_or_warn("VULNSTACK_CKPTS", v))
        .unwrap_or(snapshot::DEFAULT_MAX_SNAPSHOTS)
}

/// Error preparing an experiment.
#[derive(Debug, Clone)]
pub enum PrepareError {
    /// Compilation failed.
    Compile(String),
    /// Image assembly failed.
    Image(String),
    /// The golden run did not exit cleanly.
    BadGolden(RunStatus),
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepareError::Compile(e) => write!(f, "compile failed: {e}"),
            PrepareError::Image(e) => write!(f, "image failed: {e}"),
            PrepareError::BadGolden(s) => write!(f, "golden run did not exit cleanly: {s:?}"),
        }
    }
}

impl std::error::Error for PrepareError {}

/// A workload prepared for microarchitecture-level (AVF/HVF) campaigns on
/// one core model.
#[derive(Debug)]
pub struct Prepared {
    /// The core configuration.
    pub cfg: CoreConfig,
    /// The bootable image.
    pub image: SystemImage,
    /// Golden cycle-level run (status must be a clean exit).
    pub golden: SimOutcome,
    /// Expected program output.
    pub expected_output: Vec<u8>,
    /// Cycle budget for faulty runs.
    pub budget: u64,
    /// Fault-free core snapshots taken along the golden run, for
    /// warm-starting injections near their injection cycle.
    pub checkpoints: CheckpointStore,
}

impl Prepared {
    /// Compiles and golden-runs `workload` on `model`, recording
    /// periodic checkpoints of the fault-free core along the way.
    ///
    /// # Errors
    ///
    /// Returns [`PrepareError`] if compilation, image assembly, or the
    /// golden run fails.
    pub fn new(workload: &Workload, model: CoreModel) -> Result<Prepared, PrepareError> {
        let cfg = model.config();
        let compiled = compile(&workload.module, cfg.isa, &CompileOpts::default())
            .map_err(|e| PrepareError::Compile(e.to_string()))?;
        let image = SystemImage::build(&compiled, &workload.input)
            .map_err(|e| PrepareError::Image(e.to_string()))?;
        let (checkpoints, out) = CheckpointStore::record(
            &cfg,
            &image,
            checkpoint_interval(),
            checkpoint_cap(),
            GOLDEN_CYCLE_BUDGET,
        );
        let golden = out.sim;
        if golden.status != RunStatus::Exited(0) {
            return Err(PrepareError::BadGolden(golden.status));
        }
        let budget = golden.cycles * 8 + 500_000;
        Ok(Prepared {
            cfg,
            image,
            golden,
            expected_output: workload.expected_output.clone(),
            budget,
            checkpoints,
        })
    }

    /// A fault-free core advanced to exactly `cycle`, warm-started from
    /// the nearest checkpoint at or before it. Bit-identical to
    /// [`Prepared::core_from_scratch`] advanced to the same cycle.
    pub fn core_at(&self, cycle: u64) -> OooCore {
        let mut core = self.checkpoints.restore(cycle);
        core.run_until(cycle);
        core
    }

    /// A fresh core at cycle 0 (the un-accelerated path, kept for
    /// equivalence testing and speedup measurement).
    pub fn core_from_scratch(&self) -> OooCore {
        OooCore::new(&self.cfg, &self.image)
    }
}

/// A workload prepared for architecture-level (PVF) campaigns on one ISA
/// (microarchitecture-independent, per the PVF definition).
#[derive(Debug)]
pub struct FuncPrepared {
    /// Target ISA.
    pub isa: Isa,
    /// The bootable image.
    pub image: SystemImage,
    /// Golden functional run.
    pub golden: SimOutcome,
    /// Execution profile (program-flow population for WD sampling).
    pub profile: Profile,
    /// Expected program output.
    pub expected_output: Vec<u8>,
    /// Dynamic-instruction budget for faulty runs.
    pub budget: u64,
}

impl FuncPrepared {
    /// Compiles and golden-runs `workload` functionally on `isa`.
    ///
    /// # Errors
    ///
    /// Returns [`PrepareError`] if compilation, image assembly, or the
    /// golden run fails.
    pub fn new(workload: &Workload, isa: Isa) -> Result<FuncPrepared, PrepareError> {
        let compiled = compile(&workload.module, isa, &CompileOpts::default())
            .map_err(|e| PrepareError::Compile(e.to_string()))?;
        let image = SystemImage::build(&compiled, &workload.input)
            .map_err(|e| PrepareError::Image(e.to_string()))?;
        let (golden, profile) = FuncCore::new(&image).run_with_profile(FUNC_INSTR_BUDGET);
        if golden.status != RunStatus::Exited(0) {
            return Err(PrepareError::BadGolden(golden.status));
        }
        let budget = golden.instrs * 8 + 500_000;
        Ok(FuncPrepared {
            isa,
            image,
            golden,
            profile,
            expected_output: workload.expected_output.clone(),
            budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_workloads::WorkloadId;

    #[test]
    fn prepares_crc32_on_a9() {
        let w = WorkloadId::Crc32.build();
        let p = Prepared::new(&w, CoreModel::A9).unwrap();
        assert_eq!(p.golden.status, RunStatus::Exited(0));
        assert_eq!(p.golden.output, w.expected_output);
        assert!(p.budget > p.golden.cycles);
        assert!(!p.checkpoints.is_empty(), "golden run must checkpoint");
        let mid = p.golden.cycles / 2;
        assert!(p.checkpoints.nearest_cycle(mid) <= mid);
        assert_eq!(p.core_at(mid).cycle(), mid);
    }

    #[test]
    fn prepares_functional_smooth_on_va64() {
        let w = WorkloadId::Smooth.build();
        let p = FuncPrepared::new(&w, Isa::Va64).unwrap();
        assert_eq!(p.golden.status, RunStatus::Exited(0));
        assert!(!p.profile.touched_bytes.is_empty());
        assert!(p.profile.kernel_instrs > 0, "syscalls must run kernel code");
    }
}
