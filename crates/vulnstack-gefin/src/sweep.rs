//! Temporal vulnerability sweeps: AVF as a function of *when* in the
//! execution the fault strikes.
//!
//! The paper's case studies hinge on execution time (a 2–2.5× longer
//! hardened run exposes state for longer); this module makes the temporal
//! structure directly measurable by binning injections into fixed windows
//! of the golden run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vulnstack_core::effects::Tally;
use vulnstack_core::journal::{fnv1a64, Fingerprint, JournalError, JournalOpts, ResumableCampaign};
use vulnstack_core::sched::{self, Quarantine};
use vulnstack_core::sink::{self, RecordHandle, StreamOpts};
use vulnstack_core::stack::FpmDist;
use vulnstack_core::trace::CampaignMetrics;
use vulnstack_core::ResumeStats;
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::FaultModel;

use crate::avf::{decode_record, encode_record, run_one_inner, InjectEngine, RECORD_VERSION};
use crate::prepare::Prepared;
use crate::prune::{PruneStats, Pruner};

/// Per-window results of a temporal sweep.
#[derive(Debug, Clone)]
pub struct TemporalProfile {
    /// Target structure.
    pub structure: HwStructure,
    /// Window boundaries in cycles: window `i` covers
    /// `[bounds[i], bounds[i+1])`.
    pub bounds: Vec<u64>,
    /// Fault-effect tally per window.
    pub tallies: Vec<Tally>,
    /// FPM distribution per window.
    pub fpms: Vec<FpmDist>,
}

impl TemporalProfile {
    /// Total vulnerability per window.
    pub fn series(&self) -> Vec<f64> {
        self.tallies.iter().map(|t| t.vf().total()).collect()
    }
}

/// Runs `per_window` injections uniformly inside each of `windows` equal
/// slices of the golden execution, parallelised over `threads` workers
/// with work stealing. Deterministic for a given seed at any thread
/// count. Windowed sites are the checkpoint layer's best case: every
/// injection in a window restores from the same few golden snapshots.
pub fn temporal_campaign(
    prep: &Prepared,
    structure: HwStructure,
    windows: usize,
    per_window: usize,
    seed: u64,
    threads: usize,
) -> TemporalProfile {
    temporal_campaign_metered(prep, structure, windows, per_window, seed, threads, None)
}

/// [`temporal_campaign`] with optional campaign metrics (worker spans,
/// restore distances, extinct-early and watchdog counters). Results are
/// identical to the unmetered sweep.
#[allow(clippy::too_many_arguments)]
pub fn temporal_campaign_metered(
    prep: &Prepared,
    structure: HwStructure,
    windows: usize,
    per_window: usize,
    seed: u64,
    threads: usize,
    metrics: Option<&CampaignMetrics>,
) -> TemporalProfile {
    let (bounds, sites) = draw_windowed_sites(prep, structure, windows, per_window, seed);
    let order = sched::sort_order_by(&sites, |&(_, c, _)| c);
    let records = sched::map_ordered_metered(
        &sites,
        &order,
        threads,
        |_, &(w, cycle, bit)| {
            let (rec, _) = run_one_inner(
                prep,
                structure,
                cycle,
                bit,
                FaultModel::BitFlip,
                InjectEngine::Checkpointed,
                None,
                metrics,
            );
            (w, rec)
        },
        metrics,
    );

    let mut tallies = vec![Tally::default(); windows];
    let mut fpms = vec![FpmDist::new(); windows];
    for (w, rec) in records {
        tallies[w].add(rec.effect);
        fpms[w].add(rec.fpm);
    }

    TemporalProfile {
        structure,
        bounds,
        tallies,
        fpms,
    }
}

/// [`temporal_campaign_metered`] executed through the equivalence-class
/// [`Pruner`]: the same windowed sites, served from the class table
/// where provable and early-terminating simulations elsewhere. Per-site
/// records are bit-identical to the unpruned sweep, so the per-window
/// tallies and FPM distributions are too.
#[allow(clippy::too_many_arguments)]
pub fn temporal_campaign_pruned(
    prep: &Prepared,
    structure: HwStructure,
    windows: usize,
    per_window: usize,
    seed: u64,
    threads: usize,
    metrics: Option<&CampaignMetrics>,
) -> (TemporalProfile, PruneStats) {
    let (bounds, sites) = draw_windowed_sites(prep, structure, windows, per_window, seed);
    let order = sched::sort_order_by(&sites, |&(_, c, _)| c);
    let pruner = Pruner::new(prep, structure);
    let records = sched::map_ordered_metered(
        &sites,
        &order,
        threads,
        |_, &(w, cycle, bit)| (w, pruner.run_site(cycle, bit, metrics)),
        metrics,
    );

    let mut tallies = vec![Tally::default(); windows];
    let mut fpms = vec![FpmDist::new(); windows];
    for (w, rec) in records {
        tallies[w].add(rec.effect);
        fpms[w].add(rec.fpm);
    }

    (
        TemporalProfile {
            structure,
            bounds,
            tallies,
            fpms,
        },
        pruner.stats(),
    )
}

/// Draws the sweep's window bounds and fault sites — `(window, cycle,
/// bit)` triples, in window order from a single seeded stream, so the
/// sample set is independent of the thread count and of whether the
/// journaled or plain campaign path runs it.
fn draw_windowed_sites(
    prep: &Prepared,
    structure: HwStructure,
    windows: usize,
    per_window: usize,
    seed: u64,
) -> (Vec<u64>, Vec<(usize, u64, u64)>) {
    assert!(windows >= 1);
    if windows as u64 > prep.golden.cycles {
        // Pigeonholing more windows than cycles forces duplicate bounds
        // and empty windows; say so instead of silently binning them.
        eprintln!(
            "warning: {windows} sweep windows over a {}-cycle run: some windows are degenerate",
            prep.golden.cycles
        );
    }
    let total = prep.golden.cycles.max(windows as u64);
    let bits = structure.bits(&prep.cfg);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7E0A_11D5_11CE_0DD5);

    let bounds = window_bounds(total, windows);

    let sites: Vec<(usize, u64, u64)> = (0..windows)
        .flat_map(|w| {
            let (lo, hi) = (bounds[w], bounds[w + 1].max(bounds[w] + 1));
            (0..per_window)
                .map(|_| (w, rng.gen_range(lo..hi), rng.gen_range(0..bits)))
                .collect::<Vec<_>>()
        })
        .collect();
    (bounds, sites)
}

/// The sweep's `windows + 1` window boundaries over cycles `1..=total`:
/// window `i` covers `[bounds[i], bounds[i+1])`, evenly split. The
/// interpolation product is taken in `u128` — in `u64` the old
/// `(total - 1) * i` wrapped once `total > u64::MAX / windows`,
/// silently folding every boundary of a long campaign onto garbage
/// cycles near the run's start.
fn window_bounds(total: u64, windows: usize) -> Vec<u64> {
    assert!(windows >= 1 && total >= 1);
    (0..=windows)
        .map(|i| 1 + ((u128::from(total) - 1) * i as u128 / windows as u128) as u64)
        .collect()
}

/// Results of a resumable temporal sweep: the per-window profile over
/// completed records, the quarantined sites (excluded from their
/// window's tally), and the replay/execute accounting.
#[derive(Debug)]
pub struct TemporalResumed {
    /// Per-window profile over the completed records.
    pub profile: TemporalProfile,
    /// Sites whose every injection attempt panicked.
    pub quarantined: Vec<Quarantine>,
    /// Resume accounting.
    pub stats: ResumeStats,
}

/// Journaled, crash-resumable [`temporal_campaign_metered`]: each
/// settled site is appended durably to the journal at `opts.path`, and
/// a resume replays the journaled sites instantly, running only the
/// rest. Sites are drawn in window order, so a record's window is
/// recovered from its campaign index (`index / per_window`) without
/// journaling it.
///
/// # Errors
///
/// Any [`JournalError`] (see
/// [`avf_campaign_resumable`](crate::avf::avf_campaign_resumable)).
#[allow(clippy::too_many_arguments)]
pub fn temporal_campaign_resumable(
    prep: &Prepared,
    structure: HwStructure,
    windows: usize,
    per_window: usize,
    seed: u64,
    threads: usize,
    opts: &JournalOpts<'_>,
    metrics: Option<&CampaignMetrics>,
) -> Result<TemporalResumed, JournalError> {
    temporal_resumable_inner(
        prep, structure, windows, per_window, seed, threads, opts, metrics, None,
    )
}

/// [`temporal_campaign_resumable`] executed through the
/// equivalence-class [`Pruner`]. The plan is part of the journal
/// identity (`params` gains `;plan=pruned`), and the class-table digest
/// is journaled as `class-table` metadata — a resume whose rebuilt
/// table disagrees is refused
/// ([`vulnstack_core::journal::JournalError::MetaMismatch`]) rather
/// than silently re-pruned.
///
/// # Errors
///
/// Any [`JournalError`], including a class-table metadata mismatch.
#[allow(clippy::too_many_arguments)]
pub fn temporal_campaign_resumable_pruned(
    prep: &Prepared,
    structure: HwStructure,
    windows: usize,
    per_window: usize,
    seed: u64,
    threads: usize,
    opts: &JournalOpts<'_>,
    metrics: Option<&CampaignMetrics>,
) -> Result<(TemporalResumed, PruneStats), JournalError> {
    let pruner = Pruner::new(prep, structure);
    let resumed = temporal_resumable_inner(
        prep,
        structure,
        windows,
        per_window,
        seed,
        threads,
        opts,
        metrics,
        Some(&pruner),
    )?;
    Ok((resumed, pruner.stats()))
}

#[allow(clippy::too_many_arguments)]
fn temporal_resumable_inner(
    prep: &Prepared,
    structure: HwStructure,
    windows: usize,
    per_window: usize,
    seed: u64,
    threads: usize,
    opts: &JournalOpts<'_>,
    metrics: Option<&CampaignMetrics>,
    pruner: Option<&Pruner<'_>>,
) -> Result<TemporalResumed, JournalError> {
    let (bounds, sites) = draw_windowed_sites(prep, structure, windows, per_window, seed);
    let order = sched::sort_order_by(&sites, |&(_, c, _)| c);
    let plan_suffix = if pruner.is_some() { ";plan=pruned" } else { "" };
    let fingerprint = Fingerprint {
        engine: "gefin-sweep".to_string(),
        workload: opts.workload.to_string(),
        config: prep.cfg.model.name().to_string(),
        structure: structure.name().to_string(),
        seed,
        samples: sites.len() as u64,
        params: format!(
            "windows={windows};per_window={per_window};golden_cycles={};output={:016x}{plan_suffix}",
            prep.golden.cycles,
            fnv1a64(&prep.expected_output)
        ),
        version: RECORD_VERSION,
    };
    let meta: Vec<(String, String)> = pruner
        .map(|p| {
            vec![(
                "class-table".to_string(),
                format!("fnv={:016x}", p.table().digest()),
            )]
        })
        .unwrap_or_default();
    let resumed = ResumableCampaign {
        path: opts.path,
        fingerprint,
        mode: opts.mode,
        items: &sites,
        order: &order,
        threads,
        policy: opts.policy,
        meta: &meta,
    }
    .run(
        |_, &(_, cycle, bit)| match pruner {
            Some(p) => p.run_site(cycle, bit, metrics),
            None => {
                run_one_inner(
                    prep,
                    structure,
                    cycle,
                    bit,
                    FaultModel::BitFlip,
                    InjectEngine::Checkpointed,
                    None,
                    metrics,
                )
                .0
            }
        },
        encode_record,
        decode_record,
        metrics,
    )?;

    let mut tallies = vec![Tally::default(); windows];
    let mut fpms = vec![FpmDist::new(); windows];
    for (i, outcome) in resumed.outcomes.iter().enumerate() {
        if let Some(rec) = outcome.done() {
            let w = i / per_window.max(1);
            tallies[w].add(rec.effect);
            fpms[w].add(rec.fpm);
        }
    }
    Ok(TemporalResumed {
        profile: TemporalProfile {
            structure,
            bounds,
            tallies,
            fpms,
        },
        quarantined: resumed.quarantined().into_iter().cloned().collect(),
        stats: resumed.stats,
    })
}

/// Results of a streaming temporal sweep: per-window tallies
/// accumulated record-by-record in the sink fold; the record stream
/// lives on disk (when a spill file was requested), never in RAM.
#[derive(Debug)]
pub struct TemporalStreamed {
    /// Per-window profile over the completed records.
    pub profile: TemporalProfile,
    /// Sites whose every injection attempt panicked (journaled runs
    /// only; the unjournaled path propagates panics like
    /// [`temporal_campaign`]).
    pub quarantined: Vec<Quarantine>,
    /// Handle to the on-disk record stream, when
    /// [`StreamOpts::spill`] was set.
    pub records: Option<RecordHandle>,
    /// Replay/execute accounting (all-executed for unjournaled runs).
    pub stats: ResumeStats,
}

/// Streaming, bounded-memory temporal sweep: the per-window tallies are
/// folded one record at a time as sites settle (a record's window is
/// its campaign index over `per_window`, as in the resumable sweep), so
/// peak memory is bounded by the sink channel regardless of `windows ×
/// per_window`. With `journal` the fingerprint matches
/// [`temporal_campaign_resumable`] (or its pruned variant when `pruned`)
/// bit-for-bit, so streamed and legacy sweeps can kill-and-resume each
/// other's journals.
///
/// # Errors
///
/// Any [`JournalError`] (journaled runs), or spill-file I/O errors.
#[allow(clippy::too_many_arguments)]
pub fn temporal_campaign_streamed(
    prep: &Prepared,
    structure: HwStructure,
    windows: usize,
    per_window: usize,
    seed: u64,
    threads: usize,
    pruned: bool,
    journal: Option<&JournalOpts<'_>>,
    stream: StreamOpts<'_>,
    metrics: Option<&CampaignMetrics>,
) -> Result<(TemporalStreamed, Option<PruneStats>), JournalError> {
    let (bounds, sites) = draw_windowed_sites(prep, structure, windows, per_window, seed);
    let order = sched::sort_order_by(&sites, |&(_, c, _)| c);
    let pruner = pruned.then(|| Pruner::new(prep, structure));
    let runner = |_: usize, &(_, cycle, bit): &(usize, u64, u64)| match &pruner {
        Some(p) => p.run_site(cycle, bit, metrics),
        None => {
            run_one_inner(
                prep,
                structure,
                cycle,
                bit,
                FaultModel::BitFlip,
                InjectEngine::Checkpointed,
                None,
                metrics,
            )
            .0
        }
    };

    let mut tallies = vec![Tally::default(); windows];
    let mut fpms = vec![FpmDist::new(); windows];
    let mut fold = |index: u64, payload: &str| {
        if let Some(rec) = decode_record(payload) {
            let w = (index as usize / per_window.max(1)).min(windows.saturating_sub(1));
            tallies[w].add(rec.effect);
            fpms[w].add(rec.fpm);
        }
    };

    let (quarantined, records, stats) = match journal {
        Some(opts) => {
            let plan_suffix = if pruned { ";plan=pruned" } else { "" };
            let fingerprint = Fingerprint {
                engine: "gefin-sweep".to_string(),
                workload: opts.workload.to_string(),
                config: prep.cfg.model.name().to_string(),
                structure: structure.name().to_string(),
                seed,
                samples: sites.len() as u64,
                params: format!(
                    "windows={windows};per_window={per_window};golden_cycles={};output={:016x}{plan_suffix}",
                    prep.golden.cycles,
                    fnv1a64(&prep.expected_output)
                ),
                version: RECORD_VERSION,
            };
            let meta: Vec<(String, String)> = pruner
                .as_ref()
                .map(|p| {
                    vec![(
                        "class-table".to_string(),
                        format!("fnv={:016x}", p.table().digest()),
                    )]
                })
                .unwrap_or_default();
            let out = ResumableCampaign {
                path: opts.path,
                fingerprint,
                mode: opts.mode,
                items: &sites,
                order: &order,
                threads,
                policy: opts.policy,
                meta: &meta,
            }
            .run_streaming(
                stream,
                runner,
                encode_record,
                decode_record,
                &mut fold,
                metrics,
            )?;
            (out.quarantined, out.records, out.stats)
        }
        None => {
            let ((), summary) = sink::stream(None, stream, &mut fold, |handle| {
                sched::map_ordered_metered(
                    &sites,
                    &order,
                    threads,
                    |i, s: &(usize, u64, u64)| {
                        handle.push_done(i as u64, encode_record(&runner(i, s)));
                    },
                    metrics,
                );
            })?;
            let stats = ResumeStats {
                executed: sites.len(),
                ..ResumeStats::default()
            };
            (summary.quarantined, summary.records, stats)
        }
    };
    Ok((
        TemporalStreamed {
            profile: TemporalProfile {
                structure,
                bounds,
                tallies,
                fpms,
            },
            quarantined,
            records,
            stats,
        },
        pruner.map(|p| p.stats()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_microarch::CoreModel;
    use vulnstack_workloads::WorkloadId;

    #[test]
    fn window_bounds_do_not_overflow_near_u64_max() {
        // The old u64 interpolation wrapped for total > u64::MAX / i;
        // in u128 the bounds stay monotone and span the whole run.
        let b = window_bounds(u64::MAX, 7);
        assert_eq!(b.len(), 8);
        assert_eq!(b[0], 1);
        assert_eq!(*b.last().unwrap(), u64::MAX);
        assert!(b.windows(2).all(|w| w[0] < w[1]), "bounds {b:?}");
    }

    #[test]
    fn window_bounds_match_the_small_case_exactly() {
        // No behavior change where the old math never overflowed.
        for (total, windows) in [(1u64, 1usize), (100, 4), (97, 3), (5, 5)] {
            let b = window_bounds(total, windows);
            let old: Vec<u64> = (0..=windows)
                .map(|i| 1 + (total - 1) * i as u64 / windows as u64)
                .collect();
            assert_eq!(b, old, "total={total} windows={windows}");
        }
    }

    #[test]
    fn degenerate_window_counts_duplicate_but_stay_sorted() {
        // More windows than cycles: duplicates are unavoidable, but the
        // bounds must stay non-decreasing and in-range (the caller is
        // warned on stderr).
        let b = window_bounds(4, 10);
        assert_eq!(b.len(), 11);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
        assert!(b.iter().all(|&c| (1..=4).contains(&c)));
        assert!(b.windows(2).any(|w| w[0] == w[1]), "expected duplicates");
    }

    #[test]
    fn windows_partition_the_run() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let p = temporal_campaign(&prep, HwStructure::L1d, 4, 8, 3, 2);
        assert_eq!(p.bounds.len(), 5);
        assert!(p.bounds.windows(2).all(|b| b[0] < b[1]));
        assert_eq!(p.tallies.len(), 4);
        assert!(p.tallies.iter().all(|t| t.total() == 8));
        assert_eq!(p.series().len(), 4);
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let a = temporal_campaign(&prep, HwStructure::Lsq, 3, 6, 5, 1);
        let b = temporal_campaign(&prep, HwStructure::Lsq, 3, 6, 5, 4);
        assert_eq!(a.tallies, b.tallies);
        assert_eq!(a.bounds, b.bounds);
    }

    #[test]
    fn late_rf_faults_tend_to_mask() {
        // Near the end of the run most register values are dead; the last
        // window should not be *more* vulnerable than the whole-run
        // average by a large factor.
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let p = temporal_campaign(&prep, HwStructure::RegisterFile, 5, 20, 9, 4);
        let series = p.series();
        let avg: f64 = series.iter().sum::<f64>() / series.len() as f64;
        let last = *series.last().unwrap();
        assert!(last <= avg + 0.35, "last window {last:.2} vs avg {avg:.2}");
    }
}
