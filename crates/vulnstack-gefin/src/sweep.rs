//! Temporal vulnerability sweeps: AVF as a function of *when* in the
//! execution the fault strikes.
//!
//! The paper's case studies hinge on execution time (a 2–2.5× longer
//! hardened run exposes state for longer); this module makes the temporal
//! structure directly measurable by binning injections into fixed windows
//! of the golden run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vulnstack_core::effects::Tally;
use vulnstack_core::stack::FpmDist;
use vulnstack_microarch::ooo::HwStructure;

use crate::avf::run_one;
use crate::prepare::Prepared;

/// Per-window results of a temporal sweep.
#[derive(Debug, Clone)]
pub struct TemporalProfile {
    /// Target structure.
    pub structure: HwStructure,
    /// Window boundaries in cycles: window `i` covers
    /// `[bounds[i], bounds[i+1])`.
    pub bounds: Vec<u64>,
    /// Fault-effect tally per window.
    pub tallies: Vec<Tally>,
    /// FPM distribution per window.
    pub fpms: Vec<FpmDist>,
}

impl TemporalProfile {
    /// Total vulnerability per window.
    pub fn series(&self) -> Vec<f64> {
        self.tallies.iter().map(|t| t.vf().total()).collect()
    }
}

/// Runs `per_window` injections uniformly inside each of `windows` equal
/// slices of the golden execution. Deterministic for a given seed;
/// single-threaded (call sites parallelise across structures/workloads).
pub fn temporal_campaign(
    prep: &Prepared,
    structure: HwStructure,
    windows: usize,
    per_window: usize,
    seed: u64,
) -> TemporalProfile {
    assert!(windows >= 1);
    let total = prep.golden.cycles.max(windows as u64);
    let bits = structure.bits(&prep.cfg);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7E0A_11D5_11CE_0DD5);

    let mut bounds = Vec::with_capacity(windows + 1);
    for i in 0..=windows {
        bounds.push(1 + (total - 1) * i as u64 / windows as u64);
    }

    let mut tallies = Vec::with_capacity(windows);
    let mut fpms = Vec::with_capacity(windows);
    for w in 0..windows {
        let (lo, hi) = (bounds[w], bounds[w + 1].max(bounds[w] + 1));
        let mut tally = Tally::default();
        let mut fpm = FpmDist::new();
        for _ in 0..per_window {
            let cycle = rng.gen_range(lo..hi);
            let bit = rng.gen_range(0..bits);
            let rec = run_one(prep, structure, cycle, bit);
            tally.add(rec.effect);
            fpm.add(rec.fpm);
        }
        tallies.push(tally);
        fpms.push(fpm);
    }

    TemporalProfile {
        structure,
        bounds,
        tallies,
        fpms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_microarch::CoreModel;
    use vulnstack_workloads::WorkloadId;

    #[test]
    fn windows_partition_the_run() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let p = temporal_campaign(&prep, HwStructure::L1d, 4, 8, 3);
        assert_eq!(p.bounds.len(), 5);
        assert!(p.bounds.windows(2).all(|b| b[0] < b[1]));
        assert_eq!(p.tallies.len(), 4);
        assert!(p.tallies.iter().all(|t| t.total() == 8));
        assert_eq!(p.series().len(), 4);
    }

    #[test]
    fn late_rf_faults_tend_to_mask() {
        // Near the end of the run most register values are dead; the last
        // window should not be *more* vulnerable than the whole-run
        // average by a large factor.
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let p = temporal_campaign(&prep, HwStructure::RegisterFile, 5, 20, 9);
        let series = p.series();
        let avg: f64 = series.iter().sum::<f64>() / series.len() as f64;
        let last = *series.last().unwrap();
        assert!(last <= avg + 0.35, "last window {last:.2} vs avg {avg:.2}");
    }
}
