//! ACE-style analytical AVF estimation (the paper's §II.A discussion):
//! instead of injecting faults, profile the lifetime of architecturally
//! required state during one fault-free run. Fast — one run instead of
//! thousands — but **pessimistic**: it counts whole-register lifetimes and
//! occupancy, ignoring logical masking and partial-width liveness, exactly
//! the overestimation the paper attributes to ACE (its reference \[34\]).

use vulnstack_microarch::ooo::AceEstimate;
use vulnstack_microarch::OooCore;

use crate::prepare::Prepared;

/// Runs one fault-free ACE-instrumented run and returns the analytical
/// estimates for the register file and the LSQ.
pub fn ace_analysis(prep: &Prepared) -> AceEstimate {
    let mut core = OooCore::new(&prep.cfg, &prep.image);
    core.enable_ace();
    core.run_until(prep.budget);
    core.ace_estimate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avf::avf_campaign;
    use vulnstack_microarch::ooo::HwStructure;
    use vulnstack_microarch::CoreModel;
    use vulnstack_workloads::WorkloadId;

    #[test]
    fn ace_is_pessimistic_relative_to_injection() {
        let w = WorkloadId::Crc32.build();
        let prep = Prepared::new(&w, CoreModel::A72).unwrap();
        let ace = ace_analysis(&prep);
        assert!(ace.rf_avf > 0.0 && ace.rf_avf < 1.0, "{ace:?}");
        assert!(ace.lsq_avf > 0.0 && ace.lsq_avf <= 1.0, "{ace:?}");

        // Injection-measured AVF for the same structure; ACE should be an
        // upper bound (allowing slack for sampling noise).
        let inj = avf_campaign(&prep, HwStructure::RegisterFile, 60, 21, 4);
        assert!(
            ace.rf_avf >= 0.8 * inj.avf().total(),
            "ACE {:.4} vs injected {:.4}: ACE lost its pessimism",
            ace.rf_avf,
            inj.avf().total()
        );
    }

    #[test]
    fn ace_runs_are_deterministic() {
        let w = WorkloadId::Smooth.build();
        let prep = Prepared::new(&w, CoreModel::A9).unwrap();
        let a = ace_analysis(&prep);
        let b = ace_analysis(&prep);
        assert_eq!(a, b);
    }
}
