//! Final emission: spill rewriting, frames, prologue/epilogue, branch
//! resolution and binary encoding.

use vulnstack_isa::{Instr, Isa, Op, Reg};
use vulnstack_vir::{FuncId, Module};

use crate::liveness;
use crate::lower::lower_function;
use crate::mir::{MFunction, MInstr, MReg, MTarget};
use crate::regalloc::{allocate, RegPools};
use crate::{CompileError, CompileOpts, CompiledModule};

/// Resolved control-flow target during per-function emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FTarget {
    None,
    /// Pending local block id (first pass) — patched to `Local`.
    Pending(u32),
    /// Local instruction index within the function.
    Local(u32),
    /// Call to another function.
    Func(FuncId),
}

/// A fully register-allocated instruction.
#[derive(Debug, Clone, Copy)]
struct FInstr {
    op: Op,
    rd: Reg,
    rs1: Reg,
    rs2: Reg,
    imm: i64,
    shift: u8,
    target: FTarget,
}

impl FInstr {
    fn simple(op: Op, rd: Reg, rs1: Reg, rs2: Reg, imm: i64, shift: u8) -> FInstr {
        FInstr {
            op,
            rd,
            rs1,
            rs2,
            imm,
            shift,
            target: FTarget::None,
        }
    }
}

#[derive(Debug)]
struct EmittedFn {
    name: String,
    instrs: Vec<FInstr>,
}

/// Compiles a whole module (the implementation behind
/// [`crate::compile`]).
pub fn compile_module(
    module: &Module,
    isa: Isa,
    opts: &CompileOpts,
) -> Result<CompiledModule, CompileError> {
    // 1. Data layout.
    let mut data: Vec<u8> = Vec::new();
    let mut global_addrs = Vec::with_capacity(module.globals.len());
    for g in &module.globals {
        let align = g.align.max(1);
        while !(opts.data_base as usize + data.len()).is_multiple_of(align as usize) {
            data.push(0);
        }
        global_addrs.push(opts.data_base + data.len() as u32);
        data.extend_from_slice(&g.init);
    }
    let data_size = ((data.len() as u32) + 15) & !15;

    // 2. Lower, allocate and emit each function.
    let pools = RegPools::for_isa(isa);
    let mut emitted: Vec<EmittedFn> = Vec::with_capacity(module.functions.len());
    for func in &module.functions {
        let mf = lower_function(module, func, isa, &global_addrs);
        emitted.push(emit_function(&mf, isa, &pools)?);
    }

    // 3. Layout: _start stub first, then functions in order.
    let start_stub = start_stub(isa, opts, module.entry);
    let mut func_offsets = Vec::with_capacity(emitted.len());
    let mut cursor = start_stub.len() as u32;
    for f in &emitted {
        func_offsets.push(cursor);
        cursor += f.instrs.len() as u32;
    }

    // 4. Encode with cross-function call resolution.
    let mut text: Vec<u32> = Vec::with_capacity(cursor as usize);
    let all = std::iter::once((&start_stub, 0u32, "_start".to_string())).chain(
        emitted
            .iter()
            .zip(func_offsets.iter())
            .map(|(f, &off)| (&f.instrs, off, f.name.clone())),
    );
    for (instrs, base, name) in all {
        for (i, fi) in instrs.iter().enumerate() {
            let pos = base + i as u32;
            let imm = match fi.target {
                FTarget::None => fi.imm,
                FTarget::Local(l) => ((base + l) as i64 - pos as i64) * 4,
                FTarget::Func(fid) => (func_offsets[fid.0 as usize] as i64 - pos as i64) * 4,
                FTarget::Pending(_) => {
                    unreachable!("unpatched branch target in {name}")
                }
            };
            let instr = build_instr(fi, imm);
            let word = instr.encode(isa).map_err(|e| {
                if matches!(
                    e,
                    vulnstack_isa::encode::EncodeError::ImmOutOfRange { .. }
                        | vulnstack_isa::encode::EncodeError::MisalignedOffset { .. }
                ) && fi.target != FTarget::None
                {
                    CompileError::BranchOutOfRange {
                        function: name.clone(),
                    }
                } else {
                    CompileError::Encode(format!("{name}[{i}] {e}"))
                }
            })?;
            text.push(word);
        }
    }

    let func_sizes = emitted.iter().map(|f| f.instrs.len() as u32).collect();
    let func_names = emitted.iter().map(|f| f.name.clone()).collect();
    Ok(CompiledModule {
        isa,
        text,
        data,
        global_addrs,
        func_offsets,
        func_names,
        entry_offset: 0,
        data_size,
        func_sizes,
    })
}

fn build_instr(fi: &FInstr, imm: i64) -> Instr {
    use vulnstack_isa::op::Format;
    match fi.op.format() {
        Format::R => Instr::alu_rr(fi.op, fi.rd, fi.rs1, fi.rs2),
        Format::I => Instr::alu_imm(fi.op, fi.rd, fi.rs1, imm),
        Format::Load => Instr::load(fi.op, fi.rd, fi.rs1, imm),
        Format::Store => Instr::store(fi.op, fi.rd, fi.rs1, imm),
        Format::B => Instr::branch(fi.op, fi.rs1, fi.rs2, imm),
        Format::J => Instr::jump(fi.op, imm),
        Format::Jr => Instr::jump_reg(fi.op, fi.rs1),
        Format::M => Instr::mov_wide(fi.op, fi.rd, imm as u16, fi.shift),
        Format::Sys => Instr::sys(fi.op),
        Format::Mfsr | Format::Mtsr => {
            // The compiler never emits privileged moves; the kernel builds
            // them directly.
            unreachable!("compiler does not emit {:?}", fi.op)
        }
    }
}

/// Emits the `_start` stub: set up the stack, call the entry function,
/// then `exit(0)`.
fn start_stub(isa: Isa, opts: &CompileOpts, entry: FuncId) -> Vec<FInstr> {
    let cc = vulnstack_isa::CallConv::new(isa);
    let sp = isa.sp();
    let mut v = Vec::new();
    let top = opts.stack_top;
    v.push(FInstr::simple(
        Op::Movz,
        sp,
        Reg(0),
        Reg(0),
        (top & 0xffff) as i64,
        0,
    ));
    if top >> 16 != 0 {
        v.push(FInstr::simple(
            Op::Movk,
            sp,
            Reg(0),
            Reg(0),
            ((top >> 16) & 0xffff) as i64,
            1,
        ));
    }
    v.push(FInstr {
        op: Op::Call,
        rd: Reg(0),
        rs1: Reg(0),
        rs2: Reg(0),
        imm: 0,
        shift: 0,
        target: FTarget::Func(entry),
    });
    // exit(0).
    v.push(FInstr::simple(Op::Movz, cc.arg(0), Reg(0), Reg(0), 0, 0));
    v.push(FInstr::simple(
        Op::Movz,
        cc.syscall_num(),
        Reg(0),
        Reg(0),
        vulnstack_isa::Syscall::Exit.number() as i64,
        0,
    ));
    v.push(FInstr::simple(Op::Syscall, Reg(0), Reg(0), Reg(0), 0, 0));
    // Unreachable safety net.
    let mut selfloop = FInstr::simple(Op::Jmp, Reg(0), Reg(0), Reg(0), 0, 0);
    selfloop.target = FTarget::None;
    v.push(selfloop);
    v
}

fn emit_function(mf: &MFunction, isa: Isa, pools: &RegPools) -> Result<EmittedFn, CompileError> {
    let live = liveness::analyze(mf);
    let asg = allocate(&live, pools);
    let sp = isa.sp();
    let lr = isa.lr();
    let word = isa.word_bytes() as i64;
    let (st_op, ld_op) = if isa == Isa::Va64 {
        (Op::Sd, Op::Ld)
    } else {
        (Op::Sw, Op::Lw)
    };

    // Frame layout: [VIR slots][spill slots][LR + callee-saved saves].
    let spill_base = mf.slots_size;
    let spill_area = (asg.num_spill_slots * 4 + 7) & !7;
    let save_base = spill_base + spill_area;
    let num_saves = asg.used_callee_saved.len() as u32 + u32::from(mf.has_calls);
    let frame = (save_base + num_saves * word as u32 + 15) & !15;
    assert!(frame < 8000, "{}: frame too large ({frame})", mf.name);
    let spill_off = |slot: u32| (spill_base + slot * 4) as i64;

    let mut out: Vec<FInstr> = Vec::new();

    // Prologue.
    if frame > 0 {
        out.push(FInstr::simple(Op::Addi, sp, sp, Reg(0), -(frame as i64), 0));
    }
    let mut save_cursor = save_base as i64;
    if mf.has_calls {
        out.push(FInstr::simple(st_op, lr, sp, Reg(0), save_cursor, 0));
        save_cursor += word;
    }
    for &r in &asg.used_callee_saved {
        out.push(FInstr::simple(st_op, r, sp, Reg(0), save_cursor, 0));
        save_cursor += word;
    }

    // Body, with spill rewriting. First pass leaves block targets pending.
    let mut block_starts: Vec<u32> = Vec::with_capacity(mf.blocks.len());
    for blk in &mf.blocks {
        block_starts.push(out.len() as u32);
        for mi in &blk.instrs {
            rewrite_instr(mi, &asg, pools, sp, &spill_off, ld_op, &mut out);
        }
    }

    // Epilogue.
    let epilogue_start = out.len() as u32;
    let mut restore_cursor = save_base as i64;
    if mf.has_calls {
        out.push(FInstr::simple(ld_op, lr, sp, Reg(0), restore_cursor, 0));
        restore_cursor += word;
    }
    for &r in &asg.used_callee_saved {
        out.push(FInstr::simple(ld_op, r, sp, Reg(0), restore_cursor, 0));
        restore_cursor += word;
    }
    if frame > 0 {
        out.push(FInstr::simple(Op::Addi, sp, sp, Reg(0), frame as i64, 0));
    }
    let mut ret = FInstr::simple(Op::Jmpr, Reg(0), lr, Reg(0), 0, 0);
    ret.target = FTarget::None;
    out.push(ret);

    // Patch pending block targets.
    for fi in &mut out {
        if let FTarget::Pending(b) = fi.target {
            fi.target = if b == u32::MAX {
                FTarget::Local(epilogue_start)
            } else {
                FTarget::Local(block_starts[b as usize])
            };
        }
    }

    Ok(EmittedFn {
        name: mf.name.clone(),
        instrs: out,
    })
}

/// Rewrites one machine instruction, inserting spill reloads/writebacks.
fn rewrite_instr(
    mi: &MInstr,
    asg: &crate::regalloc::Assignment,
    pools: &RegPools,
    sp: Reg,
    spill_off: &dyn Fn(u32) -> i64,
    ld_op: Op,
    out: &mut Vec<FInstr>,
) {
    let _ = ld_op; // spill slots are always 4 bytes; loads use LW
    use vulnstack_isa::op::Format;
    let fmt = mi.op.format();

    // Which slots are sources/defs for this format?
    let rd_is_src = fmt == Format::Store || (fmt == Format::M && mi.op == Op::Movk);
    let rd_is_def = matches!(
        fmt,
        Format::R | Format::I | Format::Load | Format::M | Format::Mfsr
    );

    let mut scratch_used = 0usize;
    let mut reloads: Vec<(u32, Reg)> = Vec::new();
    let mut resolve_src = |m: MReg, out: &mut Vec<FInstr>| -> Reg {
        match m {
            MReg::P(r) => r,
            MReg::None => Reg(0),
            MReg::V(v) => {
                if let Some(&r) = asg.reg.get(&v) {
                    r
                } else {
                    let slot = asg.spill[&v];
                    if let Some(&(_, r)) = reloads.iter().find(|(sv, _)| *sv == v) {
                        return r;
                    }
                    let s = pools.scratch[scratch_used.min(1)];
                    scratch_used += 1;
                    out.push(FInstr::simple(Op::Lw, s, sp, Reg(0), spill_off(slot), 0));
                    reloads.push((v, s));
                    s
                }
            }
        }
    };

    let rs1 = resolve_src(mi.rs1, out);
    let rs2 = resolve_src(mi.rs2, out);
    let rd_src = if rd_is_src {
        resolve_src(mi.rd, out)
    } else {
        Reg(0)
    };

    // Destination.
    let (rd, def_spill) = if rd_is_def {
        match mi.rd {
            MReg::P(r) => (r, None),
            MReg::None => (Reg(0), None),
            MReg::V(v) => {
                if let Some(&r) = asg.reg.get(&v) {
                    (r, None)
                } else {
                    (pools.scratch[0], Some(asg.spill[&v]))
                }
            }
        }
    } else if rd_is_src {
        (rd_src, None)
    } else {
        (Reg(0), None)
    };

    let target = match mi.target {
        MTarget::None => FTarget::None,
        MTarget::Block(b) => FTarget::Pending(b.0),
        MTarget::Func(f) => FTarget::Func(f),
        MTarget::Epilogue => FTarget::Pending(u32::MAX),
    };
    out.push(FInstr {
        op: mi.op,
        rd,
        rs1,
        rs2,
        imm: mi.imm,
        shift: mi.shift,
        target,
    });

    if let Some(slot) = def_spill {
        out.push(FInstr::simple(
            Op::Sw,
            pools.scratch[0],
            sp,
            Reg(0),
            spill_off(slot),
            0,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompileOpts;
    use vulnstack_vir::ModuleBuilder;

    fn compile_simple(isa: Isa) -> CompiledModule {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global_words("tbl", &[1, 2, 3]);
        let mut f = mb.function("main", 0);
        let p = f.global_addr(g);
        let v = f.load32(p, 4);
        let w = f.add(v, 40);
        f.sys_exit(w);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        compile_module(&m, isa, &CompileOpts::default()).unwrap()
    }

    #[test]
    fn compiles_and_decodes_on_both_isas() {
        for isa in [Isa::Va32, Isa::Va64] {
            let c = compile_simple(isa);
            assert!(!c.text.is_empty());
            // Every emitted word decodes.
            for (i, &w) in c.text.iter().enumerate() {
                Instr::decode(w, isa)
                    .unwrap_or_else(|e| panic!("{isa}: word {i} ({w:#010x}): {e}"));
            }
            assert_eq!(c.entry_offset, 0);
            assert_eq!(c.global_addrs[0], CompileOpts::default().data_base);
            assert_eq!(&c.data[..12], &[1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0]);
        }
    }

    #[test]
    fn va32_code_differs_from_va64() {
        let a = compile_simple(Isa::Va32);
        let b = compile_simple(Isa::Va64);
        assert_ne!(a.text, b.text);
    }

    #[test]
    fn start_stub_calls_entry_then_exits() {
        let c = compile_simple(Isa::Va64);
        // Find the CALL in the stub and check it lands on main's offset.
        let call_pos = c
            .text
            .iter()
            .position(|&w| Instr::decode(w, Isa::Va64).is_ok_and(|i| i.op == Op::Call))
            .unwrap();
        let call = Instr::decode(c.text[call_pos], Isa::Va64).unwrap();
        let dest = call_pos as i64 + call.imm / 4;
        assert_eq!(dest as u32, c.func_offsets[0]);
    }
}
