//! Instruction selection: VIR → machine IR over virtual registers.
//!
//! VIR virtual register `%n` becomes `MReg::V(n)`; lowering temporaries are
//! allocated above the VIR register count. ABI-fixed registers (arguments,
//! syscall number, SP, the VA64 zero register) appear pre-colored as
//! `MReg::P`.

use vulnstack_isa::{CallConv, Isa, Op};
use vulnstack_vir::{BinOp, CmpPred, Function, MemWidth, Module, Operand, VInstr};

use crate::mir::{MBlock, MFunction, MInstr, MReg, MTarget};

/// Lowers `func` to machine IR.
pub fn lower_function(
    _module: &Module,
    func: &Function,
    isa: Isa,
    global_addrs: &[u32],
) -> MFunction {
    let mut cx = Cx {
        isa,
        cc: CallConv::new(isa),
        global_addrs,
        out: Vec::with_capacity(func.blocks.len()),
        cur: Vec::new(),
        next_vreg: func.num_vregs,
    };

    // Frame-slot layout is fixed at lowering time: slots start at sp+0.
    let slot_offsets: Vec<u32> = (0..func.slots.len())
        .map(|i| func.slot_offset(vulnstack_vir::SlotId(i as u32)))
        .collect();
    let slots_size = {
        let mut off = 0u32;
        for s in &func.slots {
            off = (off + s.align - 1) & !(s.align - 1);
            off += s.size;
        }
        (off + 7) & !7
    };

    let mut has_calls = false;
    for (b, block) in func.blocks.iter().enumerate() {
        cx.cur = Vec::new();
        if b == 0 {
            // Receive parameters from the argument registers.
            for i in 0..func.num_params {
                let src = MReg::P(cx.cc.arg(i as usize));
                cx.push(MInstr::new(Op::Addi, MReg::V(i), src, MReg::None, 0));
            }
        }
        for ins in &block.instrs {
            if matches!(ins, VInstr::Call { .. }) {
                has_calls = true;
            }
            cx.lower(ins, &slot_offsets);
        }
        cx.out.push(MBlock {
            instrs: std::mem::take(&mut cx.cur),
        });
    }

    eliminate_dead_vreg_defs(&mut cx.out);

    MFunction {
        name: func.name.clone(),
        blocks: cx.out,
        num_vregs: cx.next_vreg,
        slots_size,
        slot_offsets,
        has_calls,
    }
}

/// Removes pure computations whose virtual destination is never read
/// anywhere in the function — chiefly the ABI result copy after a call or
/// syscall whose value the source program discards, and the parameter
/// receive of an unused parameter. Runs to a fixed point so a
/// constant-materialisation chain feeding only a dead copy collapses too.
///
/// Only side-effect-free formats are candidates (`R`/`I` ALU and `M` wide
/// moves); loads are kept because a removed load could hide an
/// address-fault difference between the binary and the VIR interpreter.
fn eliminate_dead_vreg_defs(blocks: &mut [MBlock]) {
    use vulnstack_isa::op::Format;
    loop {
        let mut read: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for b in blocks.iter() {
            for i in &b.instrs {
                read.extend(i.src_regs().iter().filter_map(|r| r.virt()));
            }
        }
        let mut removed = false;
        for b in blocks.iter_mut() {
            b.instrs.retain(|i| {
                let dead = matches!(i.op.format(), Format::R | Format::I | Format::M)
                    && i.def_reg()
                        .and_then(MReg::virt)
                        .is_some_and(|v| !read.contains(&v));
                removed |= dead;
                !dead
            });
        }
        if !removed {
            return;
        }
    }
}

struct Cx<'a> {
    isa: Isa,
    cc: CallConv,
    global_addrs: &'a [u32],
    out: Vec<MBlock>,
    cur: Vec<MInstr>,
    next_vreg: u32,
}

impl Cx<'_> {
    fn push(&mut self, i: MInstr) {
        self.cur.push(i);
    }

    fn temp(&mut self) -> MReg {
        let v = self.next_vreg;
        self.next_vreg += 1;
        MReg::V(v)
    }

    fn zero(&self) -> Option<MReg> {
        self.isa.zero().map(MReg::P)
    }

    /// Emits a register-to-register move.
    fn mov(&mut self, dst: MReg, src: MReg) {
        self.push(MInstr::new(Op::Addi, dst, src, MReg::None, 0));
    }

    /// Materialises the 32-bit constant `value` (sign-extended on VA64)
    /// into `dst`.
    fn mat_const(&mut self, value: i32, dst: MReg) {
        if self.isa == Isa::Va64 {
            if (-8192..8192).contains(&(value as i64)) {
                let z = self.zero().expect("va64 has a zero register");
                self.push(MInstr::new(Op::Addiw, dst, z, MReg::None, value as i64));
                return;
            }
            let u = value as u32;
            let lo = (u & 0xffff) as i64;
            let hi = ((u >> 16) & 0xffff) as i64;
            self.push(MInstr {
                op: Op::Movz,
                rd: dst,
                rs1: MReg::None,
                rs2: MReg::None,
                imm: lo,
                shift: 0,
                target: MTarget::None,
            });
            if hi != 0 {
                self.push(MInstr {
                    op: Op::Movk,
                    rd: dst,
                    rs1: MReg::None,
                    rs2: MReg::None,
                    imm: hi,
                    shift: 1,
                    target: MTarget::None,
                });
            }
            if value < 0 {
                // Sign-extend the 32-bit pattern into the 64-bit register.
                self.push(MInstr::new(Op::Addiw, dst, dst, MReg::None, 0));
            }
        } else {
            let u = value as u32;
            let lo = (u & 0xffff) as i64;
            let hi = ((u >> 16) & 0xffff) as i64;
            self.push(MInstr {
                op: Op::Movz,
                rd: dst,
                rs1: MReg::None,
                rs2: MReg::None,
                imm: lo,
                shift: 0,
                target: MTarget::None,
            });
            if hi != 0 {
                self.push(MInstr {
                    op: Op::Movk,
                    rd: dst,
                    rs1: MReg::None,
                    rs2: MReg::None,
                    imm: hi,
                    shift: 1,
                    target: MTarget::None,
                });
            }
        }
    }

    /// Returns a register holding the operand's value.
    fn val(&mut self, o: &Operand) -> MReg {
        match o {
            Operand::Reg(r) => MReg::V(r.0),
            Operand::Imm(v) => {
                let t = self.temp();
                self.mat_const(*v, t);
                t
            }
        }
    }

    /// A zero-valued register (the VA64 zero register, or a materialised 0
    /// on VA32).
    fn zero_reg(&mut self) -> MReg {
        match self.zero() {
            Some(z) => z,
            None => {
                let t = self.temp();
                self.mat_const(0, t);
                t
            }
        }
    }

    /// ALU op selection: `(va32_reg, va64_reg, va32_imm, va64_imm)`.
    fn alu_ops(op: BinOp) -> (Op, Op, Option<Op>, Option<Op>) {
        match op {
            BinOp::Add => (Op::Add, Op::Addw, Some(Op::Addi), Some(Op::Addiw)),
            BinOp::Sub => (Op::Sub, Op::Subw, None, None),
            BinOp::Mul => (Op::Mul, Op::Mulw, None, None),
            BinOp::MulHS => (Op::Mulh, Op::Mulh, None, None), // VA64 handled specially
            BinOp::MulHU => (Op::Mulhu, Op::Mulhu, None, None), // VA64 handled specially
            BinOp::DivS => (Op::Div, Op::Divw, None, None),
            BinOp::DivU => (Op::Divu, Op::Divuw, None, None),
            BinOp::RemS => (Op::Rem, Op::Remw, None, None),
            BinOp::RemU => (Op::Remu, Op::Remuw, None, None),
            BinOp::And => (Op::And, Op::And, Some(Op::Andi), Some(Op::Andi)),
            BinOp::Or => (Op::Or, Op::Or, Some(Op::Ori), Some(Op::Ori)),
            BinOp::Xor => (Op::Xor, Op::Xor, Some(Op::Xori), Some(Op::Xori)),
            BinOp::Shl => (Op::Sll, Op::Sllw, Some(Op::Slli), Some(Op::Slliw)),
            BinOp::ShrL => (Op::Srl, Op::Srlw, Some(Op::Srli), Some(Op::Srliw)),
            BinOp::ShrA => (Op::Sra, Op::Sraw, Some(Op::Srai), Some(Op::Sraiw)),
        }
    }

    fn lower_bin(&mut self, dst: MReg, op: BinOp, a: &Operand, b: &Operand) {
        let is64 = self.isa == Isa::Va64;
        // VA64 high-multiplies use the full 64-bit multiplier.
        if is64 && op == BinOp::MulHS {
            let ra = self.val(a);
            let rb = self.val(b);
            let t = self.temp();
            self.push(MInstr::new(Op::Mul, t, ra, rb, 0));
            self.push(MInstr::new(Op::Srai, dst, t, MReg::None, 32));
            return;
        }
        if is64 && op == BinOp::MulHU {
            let ra = self.val(a);
            let rb = self.val(b);
            let (za, zb, t) = (self.temp(), self.temp(), self.temp());
            // Zero-extend the 32-bit operands, multiply, take the high
            // word, re-establish the sign-extended-32 convention.
            self.push(MInstr::new(Op::Slli, za, ra, MReg::None, 32));
            self.push(MInstr::new(Op::Srli, za, za, MReg::None, 32));
            self.push(MInstr::new(Op::Slli, zb, rb, MReg::None, 32));
            self.push(MInstr::new(Op::Srli, zb, zb, MReg::None, 32));
            self.push(MInstr::new(Op::Mul, t, za, zb, 0));
            self.push(MInstr::new(Op::Srli, t, t, MReg::None, 32));
            self.push(MInstr::new(Op::Addiw, dst, t, MReg::None, 0));
            return;
        }

        let (op32, op64, imm32, imm64) = Self::alu_ops(op);
        let (rr, ri) = if is64 { (op64, imm64) } else { (op32, imm32) };
        // Try the immediate form.
        if let (Operand::Imm(v), Some(imm_op)) = (b, ri) {
            let shift_op = matches!(op, BinOp::Shl | BinOp::ShrL | BinOp::ShrA);
            let fits = if shift_op {
                (0..32).contains(v)
            } else {
                (-8192..8192).contains(&(*v as i64))
            };
            if fits {
                let ra = self.val(a);
                self.push(MInstr::new(imm_op, dst, ra, MReg::None, *v as i64));
                return;
            }
        }
        // `a + imm` with negatable immediate avoids materialisation for Sub.
        if op == BinOp::Sub {
            if let Operand::Imm(v) = b {
                let neg = -(*v as i64);
                if (-8192..8192).contains(&neg) {
                    let ra = self.val(a);
                    let add_imm = if is64 { Op::Addiw } else { Op::Addi };
                    self.push(MInstr::new(add_imm, dst, ra, MReg::None, neg));
                    return;
                }
            }
        }
        let ra = self.val(a);
        let rb = self.val(b);
        self.push(MInstr::new(rr, dst, ra, rb, 0));
    }

    fn lower_cmp(&mut self, dst: MReg, pred: CmpPred, a: &Operand, b: &Operand) {
        use CmpPred::*;
        // Normalise greater-than forms to less-than with swapped operands.
        let (pred, a, b) = match pred {
            SGt => (SLt, b, a),
            UGt => (ULt, b, a),
            SLe => (SGe, b, a), // a<=b == b>=a == !(b<a)
            ULe => (UGe, b, a),
            p => (p, a, b),
        };
        match pred {
            Eq | Ne => {
                let t = self.temp();
                // t = a ^ b (0 iff equal).
                match b {
                    Operand::Imm(0) => {
                        let ra = self.val(a);
                        self.mov(t, ra);
                    }
                    Operand::Imm(v) if (-8192..8192).contains(&(*v as i64)) => {
                        let ra = self.val(a);
                        self.push(MInstr::new(Op::Xori, t, ra, MReg::None, *v as i64));
                    }
                    _ => {
                        let ra = self.val(a);
                        let rb = self.val(b);
                        self.push(MInstr::new(Op::Xor, t, ra, rb, 0));
                    }
                }
                if pred == Eq {
                    self.push(MInstr::new(Op::Sltiu, dst, t, MReg::None, 1));
                } else if let Some(z) = self.zero() {
                    // dst = (0 <u t).
                    self.push(MInstr::new(Op::Sltu, dst, z, t, 0));
                } else {
                    self.push(MInstr::new(Op::Sltiu, dst, t, MReg::None, 1));
                    self.push(MInstr::new(Op::Xori, dst, dst, MReg::None, 1));
                }
            }
            SLt | ULt => {
                let (rr, ri) = if pred == SLt {
                    (Op::Slt, Op::Slti)
                } else {
                    (Op::Sltu, Op::Sltiu)
                };
                if let Operand::Imm(v) = b {
                    if (-8192..8192).contains(&(*v as i64)) {
                        let ra = self.val(a);
                        self.push(MInstr::new(ri, dst, ra, MReg::None, *v as i64));
                        return;
                    }
                }
                let ra = self.val(a);
                let rb = self.val(b);
                self.push(MInstr::new(rr, dst, ra, rb, 0));
            }
            SGe | UGe => {
                // a >= b == !(a < b).
                let rr = if pred == SGe { Op::Slt } else { Op::Sltu };
                let ra = self.val(a);
                let rb = self.val(b);
                let t = self.temp();
                self.push(MInstr::new(rr, t, ra, rb, 0));
                self.push(MInstr::new(Op::Xori, dst, t, MReg::None, 1));
            }
            _ => unreachable!("normalised above"),
        }
    }

    fn lower(&mut self, ins: &VInstr, slot_offsets: &[u32]) {
        match ins {
            VInstr::Const { dst, value } => {
                self.mat_const(*value, MReg::V(dst.0));
            }
            VInstr::Bin { dst, op, a, b } => self.lower_bin(MReg::V(dst.0), *op, a, b),
            VInstr::Cmp { dst, pred, a, b } => self.lower_cmp(MReg::V(dst.0), *pred, a, b),
            VInstr::Select { dst, cond, a, b } => {
                // Branchless select: mask = (cond==0) - 1.
                let c = self.val(cond);
                let t = self.temp();
                self.push(MInstr::new(Op::Sltiu, t, c, MReg::None, 1));
                let m = self.temp();
                let addi = if self.isa == Isa::Va64 {
                    Op::Addiw
                } else {
                    Op::Addi
                };
                self.push(MInstr::new(addi, m, t, MReg::None, -1));
                let ra = self.val(a);
                let x = self.temp();
                self.push(MInstr::new(Op::And, x, ra, m, 0));
                let mi = self.temp();
                self.push(MInstr::new(Op::Xori, mi, m, MReg::None, -1));
                let rb = self.val(b);
                let y = self.temp();
                self.push(MInstr::new(Op::And, y, rb, mi, 0));
                self.push(MInstr::new(Op::Or, MReg::V(dst.0), x, y, 0));
            }
            VInstr::Load {
                dst,
                width,
                base,
                offset,
            } => {
                let op = match width {
                    MemWidth::B => Op::Lb,
                    MemWidth::BU => Op::Lbu,
                    MemWidth::H => Op::Lh,
                    MemWidth::HU => Op::Lhu,
                    MemWidth::W => Op::Lw,
                };
                let (rb, off) = self.base_offset(base, *offset);
                self.push(MInstr::new(op, MReg::V(dst.0), rb, MReg::None, off));
            }
            VInstr::Store {
                width,
                value,
                base,
                offset,
            } => {
                let op = match width {
                    MemWidth::B | MemWidth::BU => Op::Sb,
                    MemWidth::H | MemWidth::HU => Op::Sh,
                    MemWidth::W => Op::Sw,
                };
                let rv = self.val(value);
                let (rb, off) = self.base_offset(base, *offset);
                self.push(MInstr::new(op, rv, rb, MReg::None, off));
            }
            VInstr::GlobalAddr { dst, global } => {
                let addr = self.global_addrs[global.0 as usize] as i32;
                self.mat_const(addr, MReg::V(dst.0));
            }
            VInstr::SlotAddr { dst, slot } => {
                let off = slot_offsets[slot.0 as usize] as i64;
                let sp = MReg::P(self.isa.sp());
                self.push(MInstr::new(Op::Addi, MReg::V(dst.0), sp, MReg::None, off));
            }
            VInstr::Call { dst, func, args } => {
                assert!(args.len() <= self.cc.args().len(), "too many call args");
                for (i, a) in args.iter().enumerate() {
                    let p = MReg::P(self.cc.arg(i));
                    match a {
                        Operand::Imm(v) => self.mat_const(*v, p),
                        Operand::Reg(r) => self.mov(p, MReg::V(r.0)),
                    }
                }
                self.push(MInstr {
                    op: Op::Call,
                    rd: MReg::None,
                    rs1: MReg::None,
                    rs2: MReg::None,
                    imm: 0,
                    shift: 0,
                    target: MTarget::Func(*func),
                });
                if let Some(d) = dst {
                    self.mov(MReg::V(d.0), MReg::P(self.cc.ret()));
                }
            }
            VInstr::Syscall { dst, sc, args } => {
                assert!(args.len() <= self.cc.args().len());
                for (i, a) in args.iter().enumerate() {
                    let p = MReg::P(self.cc.arg(i));
                    match a {
                        Operand::Imm(v) => self.mat_const(*v, p),
                        Operand::Reg(r) => self.mov(p, MReg::V(r.0)),
                    }
                }
                self.mat_const(sc.number() as i32, MReg::P(self.cc.syscall_num()));
                self.push(MInstr::new(
                    Op::Syscall,
                    MReg::None,
                    MReg::None,
                    MReg::None,
                    0,
                ));
                if let Some(d) = dst {
                    self.mov(MReg::V(d.0), MReg::P(self.cc.ret()));
                }
            }
            VInstr::Br { target } => {
                self.push(MInstr {
                    op: Op::Jmp,
                    rd: MReg::None,
                    rs1: MReg::None,
                    rs2: MReg::None,
                    imm: 0,
                    shift: 0,
                    target: MTarget::Block(*target),
                });
            }
            VInstr::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = self.val(cond);
                let z = self.zero_reg();
                self.push(MInstr {
                    op: Op::Bne,
                    rd: MReg::None,
                    rs1: c,
                    rs2: z,
                    imm: 0,
                    shift: 0,
                    target: MTarget::Block(*then_bb),
                });
                self.push(MInstr {
                    op: Op::Jmp,
                    rd: MReg::None,
                    rs1: MReg::None,
                    rs2: MReg::None,
                    imm: 0,
                    shift: 0,
                    target: MTarget::Block(*else_bb),
                });
            }
            VInstr::Ret { value } => {
                if let Some(v) = value {
                    let p = MReg::P(self.cc.ret());
                    match v {
                        Operand::Imm(x) => self.mat_const(*x, p),
                        Operand::Reg(r) => self.mov(p, MReg::V(r.0)),
                    }
                }
                self.push(MInstr {
                    op: Op::Jmp,
                    rd: MReg::None,
                    rs1: MReg::None,
                    rs2: MReg::None,
                    imm: 0,
                    shift: 0,
                    target: MTarget::Epilogue,
                });
            }
        }
    }

    /// Resolves a memory operand into `(base register, encodable offset)`.
    fn base_offset(&mut self, base: &Operand, offset: i32) -> (MReg, i64) {
        match base {
            Operand::Reg(r) if (-8192..8192).contains(&(offset as i64)) => {
                (MReg::V(r.0), offset as i64)
            }
            Operand::Reg(r) => {
                let t = self.temp();
                self.mat_const(offset, t);
                let add = if self.isa == Isa::Va64 {
                    Op::Addw
                } else {
                    Op::Add
                };
                let t2 = self.temp();
                self.push(MInstr::new(add, t2, MReg::V(r.0), t, 0));
                (t2, 0)
            }
            Operand::Imm(b) => {
                let t = self.temp();
                self.mat_const(b.wrapping_add(offset), t);
                (t, 0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_isa::Reg;
    use vulnstack_vir::ModuleBuilder;

    // The closure returns the value the function should return, keeping
    // it (and its inputs) alive past dead-definition elimination.
    fn lower_main(
        isa: Isa,
        build: impl FnOnce(&mut vulnstack_vir::FuncBuilder) -> Option<vulnstack_vir::VReg>,
    ) -> MFunction {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", 0);
        let r = build(&mut f);
        f.ret(r.map(Into::into));
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let f = m.entry_function();
        lower_function(&m, f, isa, &[0x10_0000])
    }

    fn all_instrs(f: &MFunction) -> Vec<MInstr> {
        f.blocks.iter().flat_map(|b| b.instrs.clone()).collect()
    }

    #[test]
    fn add_uses_w_form_on_va64() {
        let f64 = lower_main(Isa::Va64, |f| {
            let a = f.c(1);
            Some(f.add(a, a))
        });
        assert!(all_instrs(&f64).iter().any(|i| i.op == Op::Addw));

        let f32 = lower_main(Isa::Va32, |f| {
            let a = f.c(1);
            Some(f.add(a, a))
        });
        assert!(all_instrs(&f32).iter().any(|i| i.op == Op::Add));
        assert!(!all_instrs(&f32).iter().any(|i| i.op == Op::Addw));
    }

    #[test]
    fn small_constants_are_single_instruction_on_va64() {
        let f = lower_main(Isa::Va64, |f| Some(f.c(5)));
        let instrs = all_instrs(&f);
        // main has no params, so the first instruction is the constant.
        assert_eq!(instrs[0].op, Op::Addiw);
        assert_eq!(instrs[0].imm, 5);
    }

    #[test]
    fn negative_wide_constant_sign_extends_on_va64() {
        let f = lower_main(Isa::Va64, |f| Some(f.c(-100_000)));
        let ops: Vec<Op> = all_instrs(&f).iter().map(|i| i.op).collect();
        assert!(ops.contains(&Op::Movz));
        assert!(ops.contains(&Op::Movk));
        assert!(ops.contains(&Op::Addiw));
    }

    #[test]
    fn immediate_add_folds() {
        let f = lower_main(Isa::Va32, |f| {
            let a = f.c(1);
            Some(f.add(a, 100))
        });
        let instrs = all_instrs(&f);
        assert!(instrs.iter().any(|i| i.op == Op::Addi && i.imm == 100));
    }

    #[test]
    fn sub_immediate_becomes_negative_addi() {
        let f = lower_main(Isa::Va64, |f| {
            let a = f.c(1);
            Some(f.sub(a, 4))
        });
        let instrs = all_instrs(&f);
        assert!(instrs.iter().any(|i| i.op == Op::Addiw && i.imm == -4));
    }

    #[test]
    fn condbr_on_va32_materialises_zero() {
        let f = lower_main(Isa::Va32, |f| {
            let c = f.c(1);
            let t = f.new_block();
            let e = f.new_block();
            f.cond_br(c, t, e);
            f.switch_to(t);
            f.br(e);
            f.switch_to(e);
            None
        });
        let instrs = all_instrs(&f);
        let bne = instrs.iter().find(|i| i.op == Op::Bne).unwrap();
        assert!(
            matches!(bne.rs2, MReg::V(_)),
            "VA32 compares against a materialised zero"
        );

        let f64 = lower_main(Isa::Va64, |f| {
            let c = f.c(1);
            let t = f.new_block();
            let e = f.new_block();
            f.cond_br(c, t, e);
            f.switch_to(t);
            f.br(e);
            f.switch_to(e);
            None
        });
        let instrs = all_instrs(&f64);
        let bne = instrs.iter().find(|i| i.op == Op::Bne).unwrap();
        assert_eq!(bne.rs2, MReg::P(Reg(31)), "VA64 uses the zero register");
    }

    #[test]
    fn syscall_sets_number_register() {
        let f = lower_main(Isa::Va64, |f| {
            f.sys_exit(0);
            None
        });
        let instrs = all_instrs(&f);
        let cc = CallConv::new(Isa::Va64);
        let pos_sys = instrs.iter().position(|i| i.op == Op::Syscall).unwrap();
        // Some instruction before the syscall writes the number register.
        assert!(instrs[..pos_sys]
            .iter()
            .any(|i| i.def_reg() == Some(MReg::P(cc.syscall_num()))));
    }

    #[test]
    fn ret_jumps_to_epilogue() {
        let f = lower_main(Isa::Va32, |f| {
            let _ = f.c(3); // dead: eliminated, leaving just the return
            None
        });
        let last = all_instrs(&f).last().cloned().unwrap();
        assert_eq!(last.target, MTarget::Epilogue);
    }
}
