//! # vulnstack-compiler
//!
//! Compiles VIR modules to VA32 or VA64 machine code. This is the bridge
//! between the software-level view of a workload (the IR the LLFI-style
//! injector sees) and the binary that executes on the microarchitectural
//! simulator for HVF/PVF/AVF measurements.
//!
//! Pipeline: [`lower`] (instruction selection to machine IR over virtual
//! registers) → [`liveness`] → [`regalloc`] (linear scan with spilling) →
//! [`emit`] (frames, prologue/epilogue, branch resolution, binary
//! encoding).
//!
//! The two backends intentionally differ the way Armv7/Armv8 differ in the
//! paper: VA32 has 16 architectural registers (few allocatable → frequent
//! spills, more memory traffic), VA64 has 31 plus 32-bit `W` operation
//! forms; pointer widths and code density follow.
//!
//! # Example
//!
//! ```
//! use vulnstack_compiler::{compile, CompileOpts};
//! use vulnstack_isa::Isa;
//! use vulnstack_vir::ModuleBuilder;
//!
//! let mut mb = ModuleBuilder::new("m");
//! let mut f = mb.function("main", 0);
//! f.sys_exit(0);
//! f.ret(None);
//! mb.finish_function(f);
//! let module = mb.finish().unwrap();
//!
//! let compiled = compile(&module, Isa::Va64, &CompileOpts::default()).unwrap();
//! assert!(!compiled.text.is_empty());
//! ```

pub mod emit;
pub mod liveness;
pub mod lower;
pub mod mir;
pub mod regalloc;

use vulnstack_isa::Isa;
use vulnstack_vir::Module;

/// Compilation options: where data lives and where the user stack starts.
#[derive(Debug, Clone)]
pub struct CompileOpts {
    /// Base address of the data section (globals).
    pub data_base: u32,
    /// Initial user stack pointer (grows down).
    pub stack_top: u32,
}

impl Default for CompileOpts {
    fn default() -> Self {
        CompileOpts {
            data_base: 0x0010_0000,
            stack_top: 0x003F_FF00,
        }
    }
}

/// A compiled module: encoded text, initialised data, and layout metadata.
#[derive(Debug, Clone)]
pub struct CompiledModule {
    /// Target ISA.
    pub isa: Isa,
    /// Encoded instructions. Position-independent for control flow (all
    /// jumps are pc-relative) but data references are absolute, so the
    /// image must honour `CompileOpts::data_base`.
    pub text: Vec<u32>,
    /// Initialised data section contents, to be placed at `data_base`.
    pub data: Vec<u8>,
    /// Absolute address assigned to each global.
    pub global_addrs: Vec<u32>,
    /// Word offset of each function's first instruction within `text`.
    pub func_offsets: Vec<u32>,
    /// Source-level name of each function, parallel to `func_offsets`.
    /// The `_start` stub at `entry_offset` is not listed here.
    pub func_names: Vec<String>,
    /// Word offset of the `_start` stub (entry point).
    pub entry_offset: u32,
    /// End of the data section relative to `data_base` (initial heap
    /// break).
    pub data_size: u32,
    /// Per-function static instruction counts (diagnostics).
    pub func_sizes: Vec<u32>,
}

impl CompiledModule {
    /// The text section as little-endian bytes.
    pub fn text_bytes(&self) -> Vec<u8> {
        self.text.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// `(word offset, name)` of every symbol in the text section, sorted by
    /// offset: the `_start` stub plus every function. This is the symbol
    /// table the static analyzer's CFG builder keys on.
    pub fn symbols(&self) -> Vec<(u32, &str)> {
        let mut syms: Vec<(u32, &str)> = vec![(self.entry_offset, "_start")];
        syms.extend(
            self.func_offsets
                .iter()
                .zip(self.func_names.iter())
                .map(|(&o, n)| (o, n.as_str())),
        );
        syms.sort_by_key(|&(o, _)| o);
        syms
    }

    /// The symbol containing word offset `word`, if any.
    pub fn symbol_at(&self, word: u32) -> Option<(u32, &str)> {
        self.symbols()
            .into_iter()
            .take_while(|&(o, _)| o <= word)
            .last()
    }
}

/// Errors produced during compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// An encoder-level failure (field overflow) — indicates a compiler
    /// bug or an oversized function.
    Encode(String),
    /// A branch target ended up out of encodable range.
    BranchOutOfRange { function: String },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Encode(e) => write!(f, "encoding failed: {e}"),
            CompileError::BranchOutOfRange { function } => {
                write!(f, "branch out of range in {function}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles `module` for `isa`.
///
/// # Errors
///
/// Returns a [`CompileError`] if an instruction cannot be encoded (e.g. a
/// function so large a branch no longer reaches).
pub fn compile(
    module: &Module,
    isa: Isa,
    opts: &CompileOpts,
) -> Result<CompiledModule, CompileError> {
    emit::compile_module(module, isa, opts)
}
