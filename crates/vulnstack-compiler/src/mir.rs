//! Machine IR: ISA instructions over virtual registers, with symbolic
//! control-flow targets.

use vulnstack_isa::{Op, Reg};
use vulnstack_vir::{BlockId, FuncId};

/// A machine-level register operand: absent, virtual, or pre-colored
/// physical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MReg {
    /// No register in this slot.
    None,
    /// Virtual register, to be assigned by the allocator.
    V(u32),
    /// Fixed physical register (ABI-imposed: arguments, syscall number,
    /// stack pointer...).
    P(Reg),
}

impl MReg {
    /// The virtual id, if this is a virtual register.
    pub fn virt(self) -> Option<u32> {
        match self {
            MReg::V(v) => Some(v),
            _ => None,
        }
    }
}

/// Symbolic control-flow target, resolved at emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MTarget {
    /// No target.
    None,
    /// A basic block within the current function.
    Block(BlockId),
    /// Another function (for `CALL`).
    Func(FuncId),
    /// The function's epilogue (restore registers and return), emitted
    /// once at the end during emission.
    Epilogue,
}

/// One machine instruction before register allocation.
///
/// Semantics follow [`Op`]'s format; `rd`/`rs1`/`rs2` may be virtual. For
/// branches/calls, `target` carries the symbolic destination and the
/// encoded immediate is filled during emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MInstr {
    /// Machine operation.
    pub op: Op,
    /// Destination (or store-data / `MTSR` sysreg index per format).
    pub rd: MReg,
    /// First source.
    pub rs1: MReg,
    /// Second source.
    pub rs2: MReg,
    /// Immediate (byte offsets for memory ops; resolved later for control
    /// flow).
    pub imm: i64,
    /// `MOVZ`/`MOVK` shift.
    pub shift: u8,
    /// Symbolic control-flow target.
    pub target: MTarget,
}

impl MInstr {
    /// A no-target instruction.
    pub fn new(op: Op, rd: MReg, rs1: MReg, rs2: MReg, imm: i64) -> MInstr {
        MInstr {
            op,
            rd,
            rs1,
            rs2,
            imm,
            shift: 0,
            target: MTarget::None,
        }
    }

    /// Virtual registers read by this instruction (following the ISA
    /// format's source conventions).
    pub fn src_regs(&self) -> Vec<MReg> {
        use vulnstack_isa::op::Format;
        match self.op.format() {
            Format::R | Format::B => vec![self.rs1, self.rs2],
            Format::I | Format::Load | Format::Jr => vec![self.rs1],
            Format::Store => vec![self.rd, self.rs1],
            Format::Mtsr => vec![self.rs1],
            Format::M => {
                if self.op == Op::Movk {
                    vec![self.rd]
                } else {
                    vec![]
                }
            }
            Format::J | Format::Sys | Format::Mfsr => vec![],
        }
    }

    /// The register defined by this instruction, if any (per format; note
    /// store's `rd` is a *source*).
    pub fn def_reg(&self) -> Option<MReg> {
        use vulnstack_isa::op::Format;
        match self.op.format() {
            Format::R | Format::I | Format::Load | Format::M | Format::Mfsr => Some(self.rd),
            _ => None,
        }
    }

    /// True if this is a call (clobbers caller-saved state).
    pub fn is_call(&self) -> bool {
        matches!(self.op, Op::Call | Op::Callr | Op::Syscall)
    }
}

/// A lowered basic block.
#[derive(Debug, Clone, Default)]
pub struct MBlock {
    /// Instructions; control flow may only appear as the final one(s).
    pub instrs: Vec<MInstr>,
}

/// A lowered function, pre-register-allocation.
#[derive(Debug, Clone)]
pub struct MFunction {
    /// Source function name.
    pub name: String,
    /// Blocks, same ids as the VIR function.
    pub blocks: Vec<MBlock>,
    /// Number of virtual registers used.
    pub num_vregs: u32,
    /// Size of the VIR frame-slot area in bytes.
    pub slots_size: u32,
    /// Byte offset of each VIR slot within the slot area.
    pub slot_offsets: Vec<u32>,
    /// Whether the function contains calls (needs LR saved).
    pub has_calls: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_isa::Reg;

    #[test]
    fn src_and_def_follow_format() {
        let add = MInstr::new(Op::Add, MReg::V(1), MReg::V(2), MReg::V(3), 0);
        assert_eq!(add.def_reg(), Some(MReg::V(1)));
        assert_eq!(add.src_regs(), vec![MReg::V(2), MReg::V(3)]);

        let st = MInstr::new(Op::Sw, MReg::V(1), MReg::V(2), MReg::None, 4);
        assert_eq!(st.def_reg(), None);
        assert_eq!(st.src_regs(), vec![MReg::V(1), MReg::V(2)]);

        let call = MInstr {
            op: Op::Call,
            rd: MReg::None,
            rs1: MReg::None,
            rs2: MReg::None,
            imm: 0,
            shift: 0,
            target: MTarget::Func(FuncId(3)),
        };
        assert!(call.is_call());
        assert!(call.src_regs().is_empty());

        let movk = MInstr {
            op: Op::Movk,
            rd: MReg::P(Reg(1)),
            ..MInstr::new(Op::Nop, MReg::None, MReg::None, MReg::None, 0)
        };
        let movk = MInstr {
            op: Op::Movk,
            ..movk
        };
        assert_eq!(movk.src_regs(), vec![MReg::P(Reg(1))]);
    }
}
