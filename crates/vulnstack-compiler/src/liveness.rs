//! Live-interval computation for virtual registers.
//!
//! Blocks are linearised in id order; each virtual register gets one
//! conservative `[start, end]` interval (holes are not exploited). Call
//! sites are recorded so the allocator can keep call-crossing values in
//! callee-saved registers.

use std::collections::HashSet;

use crate::mir::{MFunction, MTarget};

/// A live interval over linearised instruction positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Virtual register id.
    pub vreg: u32,
    /// First position where the value is live (definition).
    pub start: u32,
    /// Last position where the value is live (inclusive).
    pub end: u32,
    /// True if the interval spans a `CALL` (caller-saved registers are
    /// then unusable).
    pub crosses_call: bool,
}

/// Result of liveness analysis.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Intervals sorted by increasing `start`.
    pub intervals: Vec<Interval>,
    /// Linearised positions of call instructions.
    pub call_sites: Vec<u32>,
    /// Linear position of the first instruction of each block.
    pub block_starts: Vec<u32>,
}

/// Computes live intervals for `f`.
pub fn analyze(f: &MFunction) -> Liveness {
    let nblocks = f.blocks.len();
    let nv = f.num_vregs as usize;

    // Per-block use/def and successor sets.
    let mut uses: Vec<HashSet<u32>> = vec![HashSet::new(); nblocks];
    let mut defs: Vec<HashSet<u32>> = vec![HashSet::new(); nblocks];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nblocks];

    for (b, blk) in f.blocks.iter().enumerate() {
        for ins in &blk.instrs {
            for s in ins.src_regs() {
                if let Some(v) = s.virt() {
                    if !defs[b].contains(&v) {
                        uses[b].insert(v);
                    }
                }
            }
            if let Some(d) = ins.def_reg() {
                if let Some(v) = d.virt() {
                    defs[b].insert(v);
                }
            }
            if let MTarget::Block(t) = ins.target {
                succs[b].push(t.0 as usize);
            }
        }
    }

    // Backward dataflow to a fixed point.
    let mut live_in: Vec<HashSet<u32>> = vec![HashSet::new(); nblocks];
    let mut live_out: Vec<HashSet<u32>> = vec![HashSet::new(); nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nblocks).rev() {
            let mut out = HashSet::new();
            for &s in &succs[b] {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn: HashSet<u32> = uses[b].clone();
            for &v in &out {
                if !defs[b].contains(&v) {
                    inn.insert(v);
                }
            }
            if out != live_out[b] || inn != live_in[b] {
                live_out[b] = out;
                live_in[b] = inn;
                changed = true;
            }
        }
    }

    // Linearise and build intervals.
    let mut block_starts = Vec::with_capacity(nblocks);
    let mut pos = 0u32;
    for blk in &f.blocks {
        block_starts.push(pos);
        pos += blk.instrs.len() as u32;
    }
    let total = pos;

    let mut start = vec![u32::MAX; nv];
    let mut end = vec![0u32; nv];
    let mut call_sites = Vec::new();

    let touch = |v: u32, p: u32, start: &mut Vec<u32>, end: &mut Vec<u32>| {
        if start[v as usize] == u32::MAX || p < start[v as usize] {
            start[v as usize] = p;
        }
        if p > end[v as usize] {
            end[v as usize] = p;
        }
    };

    for (b, blk) in f.blocks.iter().enumerate() {
        let bstart = block_starts[b];
        let bend = bstart + blk.instrs.len() as u32;
        // Values live into the block are live from its first position;
        // values live out are live through its last position.
        for &v in &live_in[b] {
            touch(v, bstart, &mut start, &mut end);
        }
        for &v in &live_out[b] {
            touch(v, bend.saturating_sub(1), &mut start, &mut end);
            touch(v, bstart, &mut start, &mut end);
        }
        for (i, ins) in blk.instrs.iter().enumerate() {
            let p = bstart + i as u32;
            if ins.is_call() && matches!(ins.op, vulnstack_isa::Op::Call | vulnstack_isa::Op::Callr)
            {
                call_sites.push(p);
            }
            for s in ins.src_regs() {
                if let Some(v) = s.virt() {
                    touch(v, p, &mut start, &mut end);
                }
            }
            if let Some(d) = ins.def_reg() {
                if let Some(v) = d.virt() {
                    touch(v, p, &mut start, &mut end);
                }
            }
        }
    }

    let mut intervals: Vec<Interval> = (0..nv as u32)
        .filter(|&v| start[v as usize] != u32::MAX)
        .map(|v| {
            let (s, e) = (start[v as usize], end[v as usize]);
            let crosses = call_sites.iter().any(|&c| s < c && c < e);
            Interval {
                vreg: v,
                start: s,
                end: e,
                crosses_call: crosses,
            }
        })
        .collect();
    intervals.sort_by_key(|i| (i.start, i.end));

    debug_assert!(intervals.iter().all(|i| i.end < total.max(1)));
    Liveness {
        intervals,
        call_sites,
        block_starts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_function;
    use vulnstack_isa::Isa;
    use vulnstack_vir::{ModuleBuilder, Operand};

    // The closure returns the value the function should return, keeping
    // it live past dead-definition elimination in lowering.
    fn analyse_main(
        build: impl FnOnce(&mut vulnstack_vir::FuncBuilder) -> Option<vulnstack_vir::VReg>,
    ) -> (MFunction, Liveness) {
        let mut mb = ModuleBuilder::new("t");
        let callee = mb.declare("id", 1);
        let mut f = mb.function("main", 0);
        let r = build(&mut f);
        f.call_void(callee, &[Operand::Imm(0)]);
        f.ret(r.map(Into::into));
        mb.finish_function(f);
        let mut g = mb.function("id", 1);
        let p = g.param(0);
        g.ret(Some(p.into()));
        mb.finish_function(g);
        let m = mb.finish().unwrap();
        let mf = lower_function(&m, m.entry_function(), Isa::Va64, &[]);
        let l = analyze(&mf);
        (mf, l)
    }

    #[test]
    fn short_temp_has_short_interval() {
        let (_, l) = analyse_main(|f| {
            let a = f.c(1);
            Some(f.add(a, 1))
        });
        // VIR %0 is `a`: defined then used once immediately after.
        let iv = l.intervals.iter().find(|i| i.vreg == 0).unwrap();
        assert!(iv.end - iv.start <= 2, "{iv:?}");
    }

    #[test]
    fn loop_variable_spans_the_loop() {
        let (mf, l) = analyse_main(|f| {
            let sum = f.fresh();
            f.set_c(sum, 0);
            f.for_range(0, 10, |f, i| {
                let s = f.add(sum, i);
                f.set(sum, s);
            });
            Some(f.add(sum, 1))
        });
        // `sum` is VIR %0; its interval must cover every block of the loop.
        let iv = l.intervals.iter().find(|i| i.vreg == 0).unwrap();
        let loop_span: u32 = mf.blocks.iter().map(|b| b.instrs.len() as u32).sum();
        assert!(iv.end > iv.start);
        assert!(iv.end <= loop_span);
        // The interval covers the backward branch region (ends after the
        // loop body, which sits in the middle blocks).
        assert!(
            iv.end >= l.block_starts[3],
            "interval {iv:?} vs starts {:?}",
            l.block_starts
        );
    }

    #[test]
    fn call_crossing_is_detected() {
        let (_, l) = analyse_main(|f| {
            let a = f.c(7);
            let callee = vulnstack_vir::FuncId(0); // "id" was declared first
            f.call_void(callee, &[Operand::Imm(1)]);
            Some(f.add(a, 1)) // `a` lives across the call
        });
        assert!(!l.call_sites.is_empty());
        let iv = l.intervals.iter().find(|i| i.vreg == 0).unwrap();
        assert!(iv.crosses_call, "{iv:?}");
    }
}
