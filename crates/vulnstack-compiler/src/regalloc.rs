//! Linear-scan register allocation with spilling.
//!
//! The allocatable pool excludes the ABI-fixed registers (arguments,
//! syscall number, SP/LR/zero) and two reserved spill-scratch registers
//! per ISA. Intervals that cross a call may only take callee-saved
//! registers. When no register is free, the interval with the furthest end
//! point is spilled to a frame slot (Poletto & Sarkar's heuristic).

use std::collections::HashMap;

use vulnstack_isa::{CallConv, Isa, Reg};

use crate::liveness::{Interval, Liveness};

/// The register pools and reserved scratch registers for an ISA.
#[derive(Debug, Clone)]
pub struct RegPools {
    /// Caller-saved allocatable registers (unusable across calls).
    pub caller: Vec<Reg>,
    /// Callee-saved allocatable registers.
    pub callee: Vec<Reg>,
    /// Two registers reserved for spill reload/writeback sequences.
    pub scratch: [Reg; 2],
}

impl RegPools {
    /// The pools used by this compiler for `isa`.
    ///
    /// VA32 ends up with 6 allocatable registers (all callee-saved), VA64
    /// with 19 — deliberately mirroring the Armv7/Armv8 pressure gap.
    pub fn for_isa(isa: Isa) -> RegPools {
        let cc = CallConv::new(isa);
        match isa {
            Isa::Va32 => RegPools {
                // r0-r3 args, r7 syscall, r4/r5 scratch, r6 unused by the
                // allocator to stay a free kernel temp.
                caller: vec![],
                callee: cc.callee_saved(),
                scratch: [Reg(4), Reg(5)],
            },
            Isa::Va64 => RegPools {
                // x0-x5 args, x8 syscall, x6/x7 scratch.
                caller: (10..16).map(Reg).collect(),
                callee: cc.callee_saved(),
                scratch: [Reg(6), Reg(7)],
            },
        }
    }

    /// Total allocatable register count.
    pub fn num_allocatable(&self) -> usize {
        self.caller.len() + self.callee.len()
    }
}

/// The allocator's output.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Virtual register → physical register.
    pub reg: HashMap<u32, Reg>,
    /// Virtual register → spill slot index (4-byte slots).
    pub spill: HashMap<u32, u32>,
    /// Number of spill slots used.
    pub num_spill_slots: u32,
    /// Callee-saved registers handed out (must be saved in the prologue).
    pub used_callee_saved: Vec<Reg>,
}

/// Runs linear scan over `liveness` using `pools`.
pub fn allocate(liveness: &Liveness, pools: &RegPools) -> Assignment {
    let mut free_caller = pools.caller.clone();
    let mut free_callee = pools.callee.clone();
    // LIFO reuse keeps register numbers dense.
    free_caller.reverse();
    free_callee.reverse();

    #[derive(Debug, Clone, Copy)]
    struct Active {
        iv: Interval,
        reg: Reg,
        callee: bool,
    }

    let mut active: Vec<Active> = Vec::new();
    let mut result = Assignment {
        reg: HashMap::new(),
        spill: HashMap::new(),
        num_spill_slots: 0,
        used_callee_saved: Vec::new(),
    };
    let mut used_callee: Vec<Reg> = Vec::new();

    for &iv in &liveness.intervals {
        // Expire finished intervals.
        active.retain(|a| {
            if a.iv.end < iv.start {
                if a.callee {
                    free_callee.push(a.reg);
                } else {
                    free_caller.push(a.reg);
                }
                false
            } else {
                true
            }
        });

        // Pick a register respecting the call-crossing constraint.
        let pick = if iv.crosses_call {
            free_callee.pop().map(|r| (r, true))
        } else {
            // Prefer caller-saved to keep callee-saved (which must be
            // saved/restored) for values that really need them.
            free_caller
                .pop()
                .map(|r| (r, false))
                .or_else(|| free_callee.pop().map(|r| (r, true)))
        };

        match pick {
            Some((reg, callee)) => {
                if callee && !used_callee.contains(&reg) {
                    used_callee.push(reg);
                }
                result.reg.insert(iv.vreg, reg);
                active.push(Active { iv, reg, callee });
            }
            None => {
                // Spill: evict the compatible active interval ending last,
                // or spill the new interval itself.
                let victim_idx = active
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !iv.crosses_call || a.callee)
                    .max_by_key(|(_, a)| a.iv.end)
                    .map(|(i, _)| i);
                match victim_idx {
                    Some(vi) if active[vi].iv.end > iv.end => {
                        let victim = active.remove(vi);
                        let slot = result.num_spill_slots;
                        result.num_spill_slots += 1;
                        result.reg.remove(&victim.iv.vreg);
                        result.spill.insert(victim.iv.vreg, slot);
                        result.reg.insert(iv.vreg, victim.reg);
                        if victim.callee && !used_callee.contains(&victim.reg) {
                            used_callee.push(victim.reg);
                        }
                        active.push(Active {
                            iv,
                            reg: victim.reg,
                            callee: victim.callee,
                        });
                    }
                    _ => {
                        let slot = result.num_spill_slots;
                        result.num_spill_slots += 1;
                        result.spill.insert(iv.vreg, slot);
                    }
                }
            }
        }
    }

    result.used_callee_saved = used_callee;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::Interval;

    fn mk_liveness(intervals: Vec<Interval>) -> Liveness {
        Liveness {
            intervals,
            call_sites: vec![],
            block_starts: vec![0],
        }
    }

    fn iv(vreg: u32, start: u32, end: u32) -> Interval {
        Interval {
            vreg,
            start,
            end,
            crosses_call: false,
        }
    }

    #[test]
    fn disjoint_intervals_share_one_register() {
        let pools = RegPools::for_isa(Isa::Va32);
        let l = mk_liveness(vec![iv(0, 0, 1), iv(1, 2, 3), iv(2, 4, 5)]);
        let a = allocate(&l, &pools);
        assert_eq!(a.num_spill_slots, 0);
        let r0 = a.reg[&0];
        assert_eq!(a.reg[&1], r0);
        assert_eq!(a.reg[&2], r0);
    }

    #[test]
    fn overlapping_intervals_get_distinct_registers() {
        let pools = RegPools::for_isa(Isa::Va64);
        let l = mk_liveness(vec![iv(0, 0, 10), iv(1, 1, 9), iv(2, 2, 8)]);
        let a = allocate(&l, &pools);
        let regs: Vec<Reg> = (0..3).map(|v| a.reg[&v]).collect();
        assert_ne!(regs[0], regs[1]);
        assert_ne!(regs[1], regs[2]);
        assert_ne!(regs[0], regs[2]);
    }

    #[test]
    fn pressure_beyond_pool_spills_longest() {
        let pools = RegPools::for_isa(Isa::Va32);
        let n = pools.num_allocatable() as u32;
        // n+1 simultaneously-live intervals; the one ending last (vreg 0)
        // should be the spill victim.
        let mut ivs = vec![iv(0, 0, 1000)];
        for v in 1..=n {
            ivs.push(iv(v, v, 50 + v));
        }
        let l = mk_liveness(ivs);
        let a = allocate(&l, &pools);
        assert_eq!(a.num_spill_slots, 1);
        assert!(a.spill.contains_key(&0), "{:?}", a.spill);
        assert!(!a.reg.contains_key(&0));
    }

    #[test]
    fn call_crossing_interval_gets_callee_saved() {
        let pools = RegPools::for_isa(Isa::Va64);
        let l = Liveness {
            intervals: vec![Interval {
                vreg: 0,
                start: 0,
                end: 10,
                crosses_call: true,
            }],
            call_sites: vec![5],
            block_starts: vec![0],
        };
        let a = allocate(&l, &pools);
        let r = a.reg[&0];
        assert!(pools.callee.contains(&r));
        assert!(a.used_callee_saved.contains(&r));
    }

    #[test]
    fn assignments_never_overlap_in_time() {
        // Property-style check with a pseudo-random interval set.
        let pools = RegPools::for_isa(Isa::Va32);
        let mut ivs = Vec::new();
        let mut s = 12345u32;
        for v in 0..60u32 {
            s = s.wrapping_mul(1103515245).wrapping_add(12345);
            let start = s % 500;
            let len = 1 + (s >> 16) % 60;
            ivs.push(iv(v, start, start + len));
        }
        ivs.sort_by_key(|i| (i.start, i.end));
        let l = mk_liveness(ivs.clone());
        let a = allocate(&l, &pools);
        for x in &ivs {
            for y in &ivs {
                if x.vreg >= y.vreg {
                    continue;
                }
                let overlap = x.start <= y.end && y.start <= x.end;
                if overlap {
                    if let (Some(rx), Some(ry)) = (a.reg.get(&x.vreg), a.reg.get(&y.vreg)) {
                        assert_ne!(rx, ry, "{x:?} vs {y:?} share {rx:?}");
                    }
                }
            }
        }
    }
}
