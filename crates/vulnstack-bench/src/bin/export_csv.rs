//! Exports the core cross-layer dataset (per-benchmark SVF/PVF/AVF with
//! SDC/Crash splits, per-structure AVF/HVF and FPM shares) as CSV files
//! under `results/csv/`, for external plotting.

use std::fs;
use std::path::Path;

use vulnstack_bench::{all_workloads, master_seed, svf_suite, AvfSuite, PvfSuite};
use vulnstack_core::report::{to_csv, write_atomic};
use vulnstack_gefin::default_faults;
use vulnstack_isa::Isa;
use vulnstack_microarch::ooo::Fpm;
use vulnstack_microarch::CoreModel;

/// Writes a results artifact atomically, naming the path on failure and
/// exiting nonzero — a partially exported dataset must not look like a
/// successful run to downstream plotting.
fn write_or_die(path: &Path, data: &str) {
    if let Err(e) = write_atomic(path, data.as_bytes()) {
        eprintln!("error: could not write {}: {e}", path.display());
        std::process::exit(1);
    }
}

fn main() {
    let faults = default_faults(120);
    let seed = master_seed();
    let dir = Path::new("results/csv");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("error: could not create {}: {e}", dir.display());
        std::process::exit(1);
    }

    let mut layer_rows = Vec::new();
    let mut structure_rows = Vec::new();

    for w in all_workloads() {
        let svf = svf_suite(&w, faults, seed).vf();
        let pvf = PvfSuite::run_wd_only(&w, Isa::Va64, faults, seed).vf();
        let suite = AvfSuite::run(&w, CoreModel::A72, faults, seed);
        let avf = suite.weighted_avf();
        layer_rows.push(vec![
            w.id.name().to_string(),
            format!("{:.6}", svf.sdc),
            format!("{:.6}", svf.crash),
            format!("{:.6}", pvf.sdc),
            format!("{:.6}", pvf.crash),
            format!("{:.6}", avf.sdc),
            format!("{:.6}", avf.crash),
        ]);
        for r in &suite.per_structure {
            structure_rows.push(vec![
                w.id.name().to_string(),
                r.structure.name().to_string(),
                r.bits.to_string(),
                format!("{:.6}", r.avf().total()),
                format!("{:.6}", r.hvf()),
                format!("{:.6}", r.fpm.share(Fpm::Wd)),
                format!("{:.6}", r.fpm.share(Fpm::Wi)),
                format!("{:.6}", r.fpm.share(Fpm::Woi)),
                format!("{:.6}", r.fpm.share(Fpm::Esc)),
            ]);
        }
        eprintln!("  [{}] done", w.id);
    }

    write_or_die(
        &dir.join("layers.csv"),
        &to_csv(
            &[
                "bench",
                "svf_sdc",
                "svf_crash",
                "pvf_sdc",
                "pvf_crash",
                "avf_sdc",
                "avf_crash",
            ],
            &layer_rows,
        ),
    );
    write_or_die(
        &dir.join("structures.csv"),
        &to_csv(
            &[
                "bench",
                "structure",
                "bits",
                "avf",
                "hvf",
                "wd",
                "wi",
                "woi",
                "esc",
            ],
            &structure_rows,
        ),
    );
    println!("wrote results/csv/layers.csv and results/csv/structures.csv");
}
