//! Ablation: wall-clock speedup of the checkpoint-and-restore injection
//! engine over from-scratch prefix re-simulation, on a representative
//! campaign (Qsort/A72/RegisterFile, n = 200 by default). Verifies along
//! the way that both engines produce identical per-injection records
//! (the determinism contract), then writes a JSON speedup record under
//! `results/` so the bench trajectory (`BENCH_*.json`) accumulates.

use std::time::Instant;

use vulnstack_bench::{figure_header, master_seed, prepare_or_die, sub_seed};
use vulnstack_core::report::Table;
use vulnstack_core::trace::CampaignMetrics;
use vulnstack_gefin::{
    avf_campaign_metered, avf_campaign_with, default_faults, default_threads, InjectEngine,
};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::WorkloadId;

fn main() {
    let n = default_faults(200);
    let threads = default_threads();
    let master = master_seed();
    figure_header(
        "Ablation — checkpointed vs from-scratch injection engine",
        n,
    );

    let id = WorkloadId::Qsort;
    let model = CoreModel::A72;
    let structure = HwStructure::RegisterFile;
    let w = id.build();

    let prep_start = Instant::now();
    let prep = prepare_or_die(&w, model);
    let prep_secs = prep_start.elapsed().as_secs_f64();
    eprintln!(
        "  [{id}/{model}] golden = {} cycles, {} checkpoints every {} cycles \
         (prepared in {prep_secs:.2}s)",
        prep.golden.cycles,
        prep.checkpoints.len(),
        prep.checkpoints.interval(),
    );

    let seed = sub_seed(master, &[id.name(), model.name(), structure.name(), "ckpt"]);
    let run = |engine: InjectEngine| {
        let t = Instant::now();
        let r = avf_campaign_with(&prep, structure, n, seed, threads, engine);
        (t.elapsed().as_secs_f64(), r)
    };
    let (scratch_secs, scratch) = run(InjectEngine::FromScratch);
    // The checkpointed pass carries the campaign-metrics collector:
    // per-worker spans, restore-distance histogram, extinct-early and
    // watchdog counters. Metrics never change the records (asserted below
    // against the unmetered from-scratch pass).
    let metrics = CampaignMetrics::new(&format!(
        "{id}/{model}/{} checkpointed n={n}",
        structure.name()
    ));
    let ckpt_t = Instant::now();
    let ckpt = avf_campaign_metered(
        &prep,
        structure,
        n,
        seed,
        threads,
        InjectEngine::Checkpointed,
        Some(&metrics),
    );
    let ckpt_secs = ckpt_t.elapsed().as_secs_f64();

    assert_eq!(
        scratch.records, ckpt.records,
        "engines must produce bit-identical per-injection records"
    );
    assert_eq!(scratch.tally, ckpt.tally);

    let speedup = scratch_secs / ckpt_secs.max(1e-9);
    let mut t = Table::new(&["engine", "seconds", "inj/s", "speedup"]);
    t.row(&[
        "from-scratch".to_string(),
        format!("{scratch_secs:.3}"),
        format!("{:.1}", n as f64 / scratch_secs),
        "1.00x".to_string(),
    ]);
    t.row(&[
        "checkpointed".to_string(),
        format!("{ckpt_secs:.3}"),
        format!("{:.1}", n as f64 / ckpt_secs),
        format!("{speedup:.2}x"),
    ]);
    println!("{}", t.render());
    println!(
        "AVF identical under both engines: {:.3} over {} injections.",
        ckpt.avf().total(),
        n
    );

    let json = format!(
        "{{\"bench\":\"checkpoint_speedup\",\"workload\":\"{}\",\"model\":\"{}\",\
         \"structure\":\"{}\",\"n\":{},\"threads\":{},\"golden_cycles\":{},\
         \"checkpoints\":{},\"interval\":{},\"prep_secs\":{:.4},\
         \"scratch_secs\":{:.4},\"ckpt_secs\":{:.4},\"speedup\":{:.3},\
         \"records_identical\":true}}\n",
        id.name(),
        model.name(),
        structure.name(),
        n,
        threads,
        prep.golden.cycles,
        prep.checkpoints.len(),
        prep.checkpoints.interval(),
        prep_secs,
        scratch_secs,
        ckpt_secs,
        speedup,
    );
    let path = "results/BENCH_checkpoint_speedup.json";
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| vulnstack_core::report::write_atomic(path, json.as_bytes()))
    {
        // A missing bench artifact must fail the run (CI checks the file
        // exists and is non-empty), not just warn.
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("  wrote {path}");

    let report = metrics.report();
    println!(
        "campaign metrics: {:.1} inj/s over {} workers | extinct-early {:.0}% | \
         watchdog expiries {} | mean restore distance {:.0} cycles",
        report.throughput(),
        report.per_worker.len(),
        report.extinct_rate() * 100.0,
        report.watchdog_expiries,
        report.mean_restore_distance(),
    );
    match report.write_files("results", "checkpoint_speedup") {
        Ok((mp, tp)) => eprintln!("  wrote {mp} and {tp} (open in chrome://tracing or Perfetto)"),
        Err(e) => eprintln!("  (could not write metrics files: {e})"),
    }
}
