//! Fig. 11 reproduction: the software fault-tolerance case study on
//! `smooth` (same panels as Fig. 10).

use vulnstack_bench::case_study::run_case_study;
use vulnstack_workloads::WorkloadId;

fn main() {
    run_case_study(WorkloadId::Smooth, "Fig. 11");
}
