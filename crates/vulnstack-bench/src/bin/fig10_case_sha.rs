//! Fig. 10 reproduction: the software fault-tolerance case study on
//! `sha` — per-structure AVF, weighted AVF, PVF and SVF, with (w/) and
//! without (w/o) the duplication+detection hardening.

use vulnstack_bench::case_study::run_case_study;
use vulnstack_workloads::WorkloadId;

fn main() {
    run_case_study(WorkloadId::Sha, "Fig. 10");
}
