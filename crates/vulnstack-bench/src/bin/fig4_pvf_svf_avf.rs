//! Fig. 4 reproduction: PVF and SVF estimations vs the full-system AVF
//! (Cortex-A72-like model) for all ten benchmarks, split into SDC and
//! Crash contributions.

use vulnstack_bench::{all_workloads, figure_header, master_seed, svf_suite, AvfSuite, PvfSuite};
use vulnstack_core::pairs::compare_orderings;
use vulnstack_core::report::{pct, pct2, Table};
use vulnstack_gefin::default_faults;
use vulnstack_isa::Isa;
use vulnstack_microarch::CoreModel;

fn main() {
    let faults = default_faults(150);
    let seed = master_seed();
    figure_header(
        "Fig. 4 — PVF, SVF and cross-layer AVF per benchmark (A72)",
        faults,
    );

    let mut t = Table::new(&[
        "bench",
        "PVF SDC",
        "PVF Crash",
        "PVF tot",
        "SVF SDC",
        "SVF Crash",
        "SVF tot",
        "AVF SDC",
        "AVF Crash",
        "AVF tot",
    ]);
    let mut pvf_tot = Vec::new();
    let mut svf_tot = Vec::new();
    let mut avf_tot = Vec::new();

    for w in all_workloads() {
        let pvf = PvfSuite::run_wd_only(&w, Isa::Va64, faults, seed).vf();
        let svf = svf_suite(&w, faults, seed).vf();
        let avf = AvfSuite::run(&w, CoreModel::A72, faults, seed).weighted_avf();
        t.row(&[
            w.id.name().into(),
            pct(pvf.sdc),
            pct(pvf.crash),
            pct(pvf.total()),
            pct(svf.sdc),
            pct(svf.crash),
            pct(svf.total()),
            pct2(avf.sdc),
            pct2(avf.crash),
            pct2(avf.total()),
        ]);
        pvf_tot.push(pvf.total());
        svf_tot.push(svf.total());
        avf_tot.push(avf.total());
        eprintln!("  [{}] done", w.id);
    }
    println!("{}", t.render());

    let eps = 1e-6;
    let pa = compare_orderings(&pvf_tot, &avf_tot, eps);
    let sa = compare_orderings(&svf_tot, &avf_tot, eps);
    println!(
        "opposite-ordered benchmark pairs: PVF vs AVF = {}/{}; SVF vs AVF = {}/{}",
        pa.opposite,
        pa.total(),
        sa.opposite,
        sa.total()
    );
    println!("(the paper reports 13/45 such pairs — the shape to check is that the count is well above zero)");
}
