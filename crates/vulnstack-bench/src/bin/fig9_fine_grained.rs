//! Fig. 9 reproduction: fine-grained Crash and SDC vulnerability across
//! the three measurement layers — SVF (software), PVF (architecture),
//! AVF (cross-layer, A72) — per benchmark.

use vulnstack_bench::{all_workloads, figure_header, master_seed, svf_suite, AvfSuite, PvfSuite};
use vulnstack_core::report::{pct, pct2, Table};
use vulnstack_gefin::default_faults;
use vulnstack_isa::Isa;
use vulnstack_microarch::CoreModel;

fn main() {
    let faults = default_faults(150);
    let seed = master_seed();
    figure_header(
        "Fig. 9 — Crash and SDC across SVF / PVF / AVF layers",
        faults,
    );

    let mut sdc_t = Table::new(&["bench", "SVF SDC", "PVF SDC", "AVF SDC"]);
    let mut crash_t = Table::new(&["bench", "SVF Crash", "PVF Crash", "AVF Crash"]);
    let mut flips = 0;
    for w in all_workloads() {
        let svf = svf_suite(&w, faults, seed).vf();
        let pvf = PvfSuite::run_wd_only(&w, Isa::Va64, faults, seed).vf();
        let avf = AvfSuite::run(&w, CoreModel::A72, faults, seed).weighted_avf();
        sdc_t.row(&[
            w.id.name().into(),
            pct(svf.sdc),
            pct(pvf.sdc),
            pct2(avf.sdc),
        ]);
        crash_t.row(&[
            w.id.name().into(),
            pct(svf.crash),
            pct(pvf.crash),
            pct2(avf.crash),
        ]);
        if (svf.sdc > svf.crash) != (avf.sdc > avf.crash) {
            flips += 1;
        }
        eprintln!("  [{}] done", w.id);
    }
    println!("[SDC]");
    println!("{}", sdc_t.render());
    println!("[Crash]");
    println!("{}", crash_t.render());
    println!("benchmarks whose dominant effect class flips between SVF and AVF: {flips}/10");
    println!("Shape to check: several benchmarks look SDC-dominated at the software");
    println!("layer while the cross-layer truth is Crash-dominated (sha, smooth in the paper).");
}
