//! Ablation: wall-clock speedup of equivalence-class fault-site pruning
//! over the full sampled campaign, on the representative configuration
//! (Qsort/A72/RegisterFile, n = 200 by default). Both passes draw the
//! *same* fault sites from the same seed; the pruned pass classifies
//! dead-interval sites without simulating them, memoises one pilot run
//! per live equivalence class, and early-terminates runs whose state
//! re-converges with a golden checkpoint. The claimed speedup is only
//! meaningful because the records are asserted bit-identical here (and,
//! independently, by `tests/prune_equivalence.rs` in CI) — pruning is a
//! pure optimisation, never an approximation.
//!
//! With `VULNSTACK_REQUIRE_SPEEDUP` set (CI does), a speedup below 2x
//! fails the run.

use std::time::Instant;

use vulnstack_bench::{figure_header, master_seed, prepare_or_die, sub_seed};
use vulnstack_core::report::Table;
use vulnstack_core::trace::CampaignMetrics;
use vulnstack_gefin::{avf_campaign_planned, default_faults, default_threads, InjectionPlan};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::WorkloadId;

fn main() {
    let n = default_faults(200);
    let threads = default_threads();
    let master = master_seed();
    figure_header("Ablation — equivalence-class pruning vs full campaign", n);

    let id = WorkloadId::Qsort;
    let model = CoreModel::A72;
    let structure = HwStructure::RegisterFile;
    let w = id.build();

    let prep_start = Instant::now();
    let prep = prepare_or_die(&w, model);
    let prep_secs = prep_start.elapsed().as_secs_f64();
    eprintln!(
        "  [{id}/{model}] golden = {} cycles, {} checkpoints every {} cycles \
         (prepared in {prep_secs:.2}s)",
        prep.golden.cycles,
        prep.checkpoints.len(),
        prep.checkpoints.interval(),
    );

    let seed = sub_seed(
        master,
        &[id.name(), model.name(), structure.name(), "prune"],
    );

    let full_t = Instant::now();
    let (full, _) = avf_campaign_planned(
        &prep,
        structure,
        &InjectionPlan::Sampled { n, seed },
        threads,
        None,
    );
    let full_secs = full_t.elapsed().as_secs_f64();

    // The pruned pass carries the metrics collector (pruned-dead and
    // early-termination counters land in the report). Its timing
    // includes building the class table — one instrumented golden run —
    // so the speedup is the honest end-to-end figure.
    let metrics = CampaignMetrics::new(&format!("{id}/{model}/{} pruned n={n}", structure.name()));
    let pruned_t = Instant::now();
    let (pruned, stats) = avf_campaign_planned(
        &prep,
        structure,
        &InjectionPlan::Pruned { n, seed },
        threads,
        Some(&metrics),
    );
    let pruned_secs = pruned_t.elapsed().as_secs_f64();
    let stats = stats.expect("pruned plan reports stats");
    let live_fraction = stats.dynamic_rf_live_fraction.unwrap_or(1.0);

    assert_eq!(
        full.records, pruned.records,
        "pruned campaign must produce bit-identical per-injection records"
    );
    assert_eq!(full.tally, pruned.tally);

    let speedup = full_secs / pruned_secs.max(1e-9);
    let mut t = Table::new(&["campaign", "seconds", "inj/s", "speedup"]);
    t.row(&[
        "full".to_string(),
        format!("{full_secs:.3}"),
        format!("{:.1}", n as f64 / full_secs),
        "1.00x".to_string(),
    ]);
    t.row(&[
        "pruned".to_string(),
        format!("{pruned_secs:.3}"),
        format!("{:.1}", n as f64 / pruned_secs),
        format!("{speedup:.2}x"),
    ]);
    println!("{}", t.render());
    println!(
        "{} sites: {} dead-classified, {} pilot runs covering {} memoised \
         members, {} singletons, {} early-terminated, {} proven hangs; \
         dynamic RF live fraction {:.4}.",
        stats.sites,
        stats.dead_masked,
        stats.pilot_runs,
        stats.memo_hits,
        stats.singleton_runs,
        stats.early_terminated,
        stats.runaway_terminated,
        live_fraction,
    );
    println!(
        "AVF identical under both plans: {:.3} over {} injections.",
        pruned.avf().total(),
        n
    );

    let json = format!(
        "{{\"bench\":\"pruning_speedup\",\"workload\":\"{}\",\"model\":\"{}\",\
         \"structure\":\"{}\",\"n\":{},\"threads\":{},\"golden_cycles\":{},\
         \"prep_secs\":{:.4},\"full_secs\":{:.4},\"pruned_secs\":{:.4},\
         \"speedup\":{:.3},\"dead_masked\":{},\"pilot_runs\":{},\
         \"memo_hits\":{},\"singleton_runs\":{},\"early_terminated\":{},\
         \"runaway_terminated\":{},\
         \"dynamic_rf_live_fraction\":{:.6},\"records_identical\":true}}\n",
        id.name(),
        model.name(),
        structure.name(),
        n,
        threads,
        prep.golden.cycles,
        prep_secs,
        full_secs,
        pruned_secs,
        speedup,
        stats.dead_masked,
        stats.pilot_runs,
        stats.memo_hits,
        stats.singleton_runs,
        stats.early_terminated,
        stats.runaway_terminated,
        live_fraction,
    );
    let path = "results/BENCH_pruning_speedup.json";
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| vulnstack_core::report::write_atomic(path, json.as_bytes()))
    {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("  wrote {path}");

    let report = metrics.report();
    println!(
        "campaign metrics: {:.1} inj/s over {} workers | pruned-dead {} | \
         early-terminated {}",
        report.throughput(),
        report.per_worker.len(),
        report.pruned_dead,
        report.early_terminated,
    );
    match report.write_files("results", "pruning_speedup") {
        Ok((mp, tp)) => eprintln!("  wrote {mp} and {tp} (open in chrome://tracing or Perfetto)"),
        Err(e) => eprintln!("  (could not write metrics files: {e})"),
    }

    if std::env::var_os("VULNSTACK_REQUIRE_SPEEDUP").is_some() && speedup < 2.0 {
        eprintln!(
            "error: pruning speedup {speedup:.2}x is below the required 2.00x \
             (VULNSTACK_REQUIRE_SPEEDUP is set)"
        );
        std::process::exit(1);
    }
}
