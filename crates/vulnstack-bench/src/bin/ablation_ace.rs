//! Ablation: ACE-style analytical AVF vs injection-measured AVF for the
//! register file and the LSQ (the paper's §II.A point that ACE analysis
//! overestimates vulnerability, its reference \[34\]).

use vulnstack_bench::{all_workloads, figure_header, master_seed, prepare_or_die, sub_seed};
use vulnstack_core::report::{pct, Table};
use vulnstack_gefin::{ace_analysis, avf_campaign, default_faults, default_threads};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::CoreModel;

fn main() {
    let faults = default_faults(150);
    let seed = master_seed();
    figure_header(
        "Ablation — ACE analytical estimate vs fault injection (A72)",
        faults,
    );

    let mut t = Table::new(&[
        "bench",
        "RF ACE",
        "RF injected",
        "RF ratio",
        "LSQ ACE",
        "LSQ injected",
        "LSQ ratio",
    ]);
    let mut pessimistic = 0;
    let mut total = 0;
    for w in all_workloads() {
        let prep = prepare_or_die(&w, CoreModel::A72);
        let ace = ace_analysis(&prep);
        let rf = avf_campaign(
            &prep,
            HwStructure::RegisterFile,
            faults,
            sub_seed(seed, &[w.id.name(), "ace-rf"]),
            default_threads(),
        );
        let lsq = avf_campaign(
            &prep,
            HwStructure::Lsq,
            faults,
            sub_seed(seed, &[w.id.name(), "ace-lsq"]),
            default_threads(),
        );
        let ratio = |a: f64, b: f64| {
            if b > 0.0 {
                format!("{:.1}x", a / b)
            } else {
                "-".to_string()
            }
        };
        for (a, b) in [
            (ace.rf_avf, rf.avf().total()),
            (ace.lsq_avf, lsq.avf().total()),
        ] {
            total += 1;
            if a >= b {
                pessimistic += 1;
            }
        }
        t.row(&[
            w.id.name().into(),
            pct(ace.rf_avf),
            pct(rf.avf().total()),
            ratio(ace.rf_avf, rf.avf().total()),
            pct(ace.lsq_avf),
            pct(lsq.avf().total()),
            ratio(ace.lsq_avf, lsq.avf().total()),
        ]);
        eprintln!("  [{}] done", w.id);
    }
    println!("{}", t.render());
    println!("ACE >= injection in {pessimistic}/{total} structure measurements.");
    println!("Shape to check: ACE consistently overestimates (the paper cites [34] for");
    println!("ACE's pessimism), because lifetime analysis cannot see logical masking.");
}
