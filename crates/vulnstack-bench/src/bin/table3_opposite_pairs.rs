//! Table III reproduction: frequency of opposite relative-vulnerability
//! comparisons — benchmark pairs that PVF/SVF order oppositely to the
//! cross-layer AVF, plus dominant-effect flips.

use vulnstack_bench::{all_workloads, figure_header, master_seed, svf_suite, AvfSuite, PvfSuite};
use vulnstack_core::pairs::{compare_orderings, dominant_effect_flips};
use vulnstack_core::report::Table;
use vulnstack_gefin::default_faults;
use vulnstack_microarch::CoreModel;

fn main() {
    let faults = default_faults(100);
    let seed = master_seed();
    figure_header(
        "Table III — opposite relative-vulnerability comparisons",
        faults,
    );

    let workloads = all_workloads();
    // SVF is ISA/microarchitecture-independent: one campaign set.
    let svf: Vec<_> = workloads
        .iter()
        .map(|w| svf_suite(w, faults, seed).vf())
        .collect();
    eprintln!("  [svf] done");

    let mut t = Table::new(&[
        "core",
        "PVF-AVF total",
        "PVF-AVF effect",
        "SVF-AVF total",
        "SVF-AVF effect",
        "SVF-PVF total",
        "SVF-PVF effect",
    ]);
    for model in CoreModel::ALL {
        let cfg = model.config();
        let pvf: Vec<_> = workloads
            .iter()
            .map(|w| PvfSuite::run_wd_only(w, cfg.isa, faults, seed).vf())
            .collect();
        eprintln!("  [pvf/{model}] done");
        let avf: Vec<_> = workloads
            .iter()
            .map(|w| AvfSuite::run(w, model, faults, seed).weighted_avf())
            .collect();
        eprintln!("  [avf/{model}] done");

        let tot = |v: &[vulnstack_core::effects::VulnFactor]| -> Vec<f64> {
            v.iter().map(|x| x.total()).collect()
        };
        let sc = |v: &[vulnstack_core::effects::VulnFactor]| -> Vec<(f64, f64)> {
            v.iter().map(|x| (x.sdc, x.crash)).collect()
        };
        let eps = 1e-6;
        let pa = compare_orderings(&tot(&pvf), &tot(&avf), eps);
        let sa = compare_orderings(&tot(&svf), &tot(&avf), eps);
        let sp = compare_orderings(&tot(&svf), &tot(&pvf), eps);
        t.row(&[
            model.name().into(),
            format!("{}/{}", pa.opposite, pa.total()),
            dominant_effect_flips(&sc(&pvf), &sc(&avf)).to_string(),
            format!("{}/{}", sa.opposite, sa.total()),
            dominant_effect_flips(&sc(&svf), &sc(&avf)).to_string(),
            format!("{}/{}", sp.opposite, sp.total()),
            dominant_effect_flips(&sc(&svf), &sc(&pvf)).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Columns: opposite pairs out of 45 total benchmark pairs ('total'), and the");
    println!("number of benchmarks whose dominant effect class flips ('effect').");
    println!("Shape to check: substantial disagreement between higher-level methods and AVF.");
}
