//! Fig. 7 reproduction: PVF per fault propagation model (WD, WOI, WI),
//! split by fault-effect class. WD shows wide cross-benchmark variance
//! and SDC dominance; WOI and especially WI are narrower and crash-heavy.

use vulnstack_bench::{all_workloads, figure_header, master_seed, PvfSuite};
use vulnstack_core::report::{pct, Table};
use vulnstack_gefin::default_faults;
use vulnstack_isa::Isa;

fn main() {
    let faults = default_faults(150);
    let seed = master_seed();
    figure_header(
        "Fig. 7 — PVF per FPM (WD / WOI / WI), SDC and Crash split (va64)",
        faults,
    );

    let mut t = Table::new(&[
        "bench",
        "WD SDC",
        "WD Crash",
        "WOI SDC",
        "WOI Crash",
        "WI SDC",
        "WI Crash",
    ]);
    let mut wd_totals = Vec::new();
    let mut wi_totals = Vec::new();
    for w in all_workloads() {
        let s = PvfSuite::run(&w, Isa::Va64, faults, seed);
        let (wd, woi, wi) = (s.wd.vf(), s.woi.vf(), s.wi.vf());
        t.row(&[
            w.id.name().into(),
            pct(wd.sdc),
            pct(wd.crash),
            pct(woi.sdc),
            pct(woi.crash),
            pct(wi.sdc),
            pct(wi.crash),
        ]);
        wd_totals.push(wd.total());
        wi_totals.push(wi.total());
        eprintln!("  [{}] done", w.id);
    }
    println!("{}", t.render());

    let spread = |v: &[f64]| {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(0.0f64, f64::max);
        hi - lo
    };
    println!(
        "variability across benchmarks: WD range = {:.1} pp, WI range = {:.1} pp",
        spread(&wd_totals) * 100.0,
        spread(&wi_totals) * 100.0
    );
    println!("Shape to check: WD varies the most across workloads and leans SDC;");
    println!("WI is more uniform and crash-heavy (wild control flow, invalid opcodes).");
}
