//! Fig. 8 reproduction: the refined PVF (rPVF — per-FPM PVF weighted by
//! the HVF-measured, size-weighted FPM distribution) compared with the
//! cross-layer AVF, across all four microarchitectures.
//!
//! The paper's point: even rPVF stays nearly microarchitecture-invariant,
//! while the true AVF differs per core.

use vulnstack_bench::{figure_header, master_seed, rpvf_weights, AvfSuite, PvfSuite};
use vulnstack_core::effects::VulnFactor;
use vulnstack_core::report::{pct, pct2, Table};
use vulnstack_gefin::default_faults;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::WorkloadId;

/// The benchmark subset shown (the paper's Fig. 8 also shows a subset and
/// notes the others behave identically).
const BENCHES: [WorkloadId; 5] = [
    WorkloadId::Fft,
    WorkloadId::Sha,
    WorkloadId::Qsort,
    WorkloadId::Djpeg,
    WorkloadId::Smooth,
];

fn main() {
    let faults = default_faults(100);
    let seed = master_seed();
    figure_header(
        "Fig. 8 — rPVF (left) vs cross-layer AVF (right), all four cores",
        faults,
    );

    let mut rpvf_t = Table::new(&["bench", "A9", "A15", "A57", "A72"]);
    let mut avf_t = Table::new(&["bench", "A9", "A15", "A57", "A72"]);
    let mut rpvf_spread = Vec::new();
    let mut avf_spread = Vec::new();

    for id in BENCHES {
        let w = id.build();
        let mut rpvf_cells = vec![id.name().to_string()];
        let mut avf_cells = vec![id.name().to_string()];
        let mut rp = Vec::new();
        let mut av = Vec::new();
        for model in CoreModel::ALL {
            let cfg = model.config();
            // PVF per FPM is ISA-level (microarchitecture-independent).
            let pvf = PvfSuite::run(&w, cfg.isa, faults, seed);
            let suite = AvfSuite::run(&w, model, faults, seed);
            let (wwd, wwoi, wwi) = rpvf_weights(&suite);
            let r: VulnFactor = pvf
                .wd
                .vf()
                .scaled(wwd)
                .plus(&pvf.woi.vf().scaled(wwoi))
                .plus(&pvf.wi.vf().scaled(wwi));
            let a = suite.weighted_avf();
            rpvf_cells.push(pct(r.total()));
            avf_cells.push(pct2(a.total()));
            rp.push(r.total());
            av.push(a.total());
            eprintln!("  [{id}/{model}] done");
        }
        rpvf_t.row(&rpvf_cells);
        avf_t.row(&avf_cells);
        let spread = |v: &[f64]| {
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(0.0f64, f64::max);
            if hi > 0.0 {
                (hi - lo) / hi
            } else {
                0.0
            }
        };
        rpvf_spread.push(spread(&rp));
        avf_spread.push(spread(&av));
    }

    println!("[rPVF]");
    println!("{}", rpvf_t.render());
    println!("[AVF]");
    println!("{}", avf_t.render());
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "mean relative spread across microarchitectures: rPVF = {:.0}%, AVF = {:.0}%",
        avg(&rpvf_spread) * 100.0,
        avg(&avf_spread) * 100.0
    );
    println!("Shape to check: rPVF varies far less across cores than the AVF does —");
    println!("even hardware-informed PVF refinement cannot recover the cross-layer truth.");
}
