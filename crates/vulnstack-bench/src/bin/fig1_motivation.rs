//! Fig. 1 reproduction: software-layer (SVF) analysis vs cross-layer AVF
//! for `sha` and `qsort` — the paper's motivating example, where the two
//! methods report *opposite* relative vulnerabilities and opposite
//! dominant effect classes.

use vulnstack_bench::{figure_header, master_seed, svf_suite, AvfSuite};
use vulnstack_core::report::{pct, pct2, Table};
use vulnstack_gefin::default_faults;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::WorkloadId;

fn main() {
    let faults = default_faults(200);
    let seed = master_seed();
    figure_header(
        "Fig. 1 — SVF (software-layer) vs AVF (cross-layer), sha & qsort",
        faults,
    );

    let mut svf_table = Table::new(&["bench", "SVF SDC", "SVF Crash", "SVF total"]);
    let mut avf_table = Table::new(&[
        "bench",
        "AVF SDC",
        "AVF Crash",
        "AVF total (A72, size-weighted)",
    ]);
    let mut totals = Vec::new();

    for id in [WorkloadId::Sha, WorkloadId::Qsort] {
        let w = id.build();
        let svf = svf_suite(&w, faults, seed).vf();
        svf_table.row(&[
            id.name().into(),
            pct(svf.sdc),
            pct(svf.crash),
            pct(svf.total()),
        ]);

        let avf = AvfSuite::run(&w, CoreModel::A72, faults, seed).weighted_avf();
        avf_table.row(&[
            id.name().into(),
            pct2(avf.sdc),
            pct2(avf.crash),
            pct2(avf.total()),
        ]);
        totals.push((id, svf, avf));
    }

    println!("{}", svf_table.render());
    println!("{}", avf_table.render());

    let (sha, qsort) = (&totals[0], &totals[1]);
    println!("Paper's observations to check:");
    println!(
        "  - SVF orders sha {} qsort ({} vs {}); AVF orders sha {} qsort ({} vs {})",
        if sha.1.total() > qsort.1.total() {
            ">"
        } else {
            "<"
        },
        pct(sha.1.total()),
        pct(qsort.1.total()),
        if sha.2.total() > qsort.2.total() {
            ">"
        } else {
            "<"
        },
        pct2(sha.2.total()),
        pct2(qsort.2.total()),
    );
    println!(
        "  - sha under SVF is {}-dominated; under AVF it is {}-dominated",
        if sha.1.sdc > sha.1.crash {
            "SDC"
        } else {
            "Crash"
        },
        if sha.2.sdc > sha.2.crash {
            "SDC"
        } else {
            "Crash"
        },
    );
    println!("  - absolute AVF values are far smaller than SVF values (hardware masking)");
}
