//! Fig. 6 reproduction: size-weighted fault-propagation-model
//! distribution (including ESC) across all four microarchitectures.

use vulnstack_bench::{all_workloads, figure_header, master_seed, AvfSuite};
use vulnstack_core::report::{pct, Table};
use vulnstack_gefin::default_faults;
use vulnstack_microarch::ooo::Fpm;
use vulnstack_microarch::CoreModel;

fn main() {
    let faults = default_faults(120);
    let seed = master_seed();
    figure_header(
        "Fig. 6 — size-weighted FPM distribution (share of visible faults per model)",
        faults,
    );

    for model in CoreModel::ALL {
        let mut t = Table::new(&["bench", "WD", "WI", "WOI", "ESC", "ESC share of visible"]);
        for w in all_workloads() {
            let suite = AvfSuite::run(&w, model, faults, seed);
            let shares = suite.weighted_fpm();
            let g = |f: Fpm| shares.get(&f).copied().unwrap_or(0.0);
            let visible: f64 = Fpm::ALL.iter().map(|&f| g(f)).sum();
            let esc_share = if visible > 0.0 {
                g(Fpm::Esc) / visible
            } else {
                0.0
            };
            t.row(&[
                w.id.name().into(),
                pct(g(Fpm::Wd)),
                pct(g(Fpm::Wi)),
                pct(g(Fpm::Woi)),
                pct(g(Fpm::Esc)),
                pct(esc_share),
            ]);
            eprintln!("  [{}/{model}] done", w.id);
        }
        println!("--- {model} ---");
        println!("{}", t.render());
    }
    println!("Shape to check (paper Fig. 6): the ESC class is a substantial share of");
    println!("the visible faults (the paper reports up to 62%, average 29%), and the");
    println!("distribution depends on both the workload and the microarchitecture.");
}
