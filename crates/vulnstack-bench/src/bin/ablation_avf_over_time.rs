//! Ablation: temporal vulnerability — AVF per execution-time window.
//! Context for the case studies: vulnerability is not uniform in time, and
//! stretching execution (hardening) stretches the exposed windows.

use vulnstack_bench::{figure_header, master_seed, prepare_or_die, sub_seed};
use vulnstack_core::report::{pct, Table};
use vulnstack_gefin::{default_faults, default_threads, temporal_campaign};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::WorkloadId;

fn main() {
    let per_window = default_faults(40);
    let windows = 5;
    let seed = master_seed();
    figure_header(
        "Ablation — AVF per execution-time quintile (A72)",
        per_window * windows,
    );

    let mut t = Table::new(&["bench", "structure", "Q1", "Q2", "Q3", "Q4", "Q5"]);
    for id in [WorkloadId::Sha, WorkloadId::Qsort, WorkloadId::Smooth] {
        let w = id.build();
        let prep = prepare_or_die(&w, CoreModel::A72);
        for st in [HwStructure::RegisterFile, HwStructure::L1d] {
            let p = temporal_campaign(
                &prep,
                st,
                windows,
                per_window,
                sub_seed(seed, &[id.name(), st.name(), "temporal"]),
                default_threads(),
            );
            let mut row = vec![id.name().to_string(), st.name().to_string()];
            row.extend(p.series().iter().map(|v| pct(*v)));
            t.row(&row);
        }
        eprintln!("  [{id}] done");
    }
    println!("{}", t.render());
    println!("Vulnerability varies across the run (e.g. late-run faults in data");
    println!("that is already written out tend to escape or mask).");
}
