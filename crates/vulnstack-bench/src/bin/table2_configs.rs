//! Table II reproduction: the simulated hardware parameters of the four
//! microprocessor models.

use vulnstack_core::report::Table;
use vulnstack_microarch::CoreModel;

fn main() {
    println!("=== Table II — simulated hardware parameters ===\n");
    let mut t = Table::new(&["parameter", "A9", "A15", "A57", "A72"]);
    let cfgs: Vec<_> = CoreModel::ALL.iter().map(|m| m.config()).collect();
    let row = |name: &str, f: &dyn Fn(&vulnstack_microarch::CoreConfig) -> String| {
        let mut cells = vec![name.to_string()];
        cells.extend(cfgs.iter().map(f));
        cells
    };
    let kb = |b: u32| format!("{} KB", b / 1024);

    t.row(&row("ISA", &|c| c.isa.to_string()));
    t.row(&row("pipeline width", &|c| c.width.to_string()));
    t.row(&row("ROB entries", &|c| c.rob_entries.to_string()));
    t.row(&row("IQ entries", &|c| c.iq_entries.to_string()));
    t.row(&row("LQ/SQ entries", &|c| {
        format!("{}/{}", c.lq_entries, c.sq_entries)
    }));
    t.row(&row("physical registers", &|c| {
        format!("{} x {}bit", c.phys_regs, c.isa.xlen())
    }));
    t.row(&row("L1i", &|c| kb(c.l1i.size)));
    t.row(&row("L1d", &|c| kb(c.l1d.size)));
    t.row(&row("L2", &|c| kb(c.l2.size)));
    t.row(&row("memory latency", &|c| {
        format!("{} cyc", c.mem_latency)
    }));
    t.row(&row("RF bits (inject)", &|c| c.rf_bits().to_string()));
    t.row(&row("LSQ bits (inject)", &|c| c.lsq_bits().to_string()));
    println!("{}", t.render());
}
