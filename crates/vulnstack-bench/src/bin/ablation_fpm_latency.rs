//! Ablation: fault-manifestation latency — cycles between injection and
//! the first architecturally visible consumption, per structure. Context
//! for the paper's Fig. 3 timeline (fault-free period → injection →
//! software visibility) and for why longer runs (the hardened case study)
//! expose more state.

use vulnstack_bench::{figure_header, master_seed, prepare_or_die, sub_seed};
use vulnstack_core::report::Table;
use vulnstack_gefin::{avf_campaign, default_faults, default_threads};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::WorkloadId;

fn main() {
    let faults = default_faults(200);
    let seed = master_seed();
    figure_header(
        "Ablation — injection-to-manifestation latency (A72)",
        faults,
    );

    let mut t = Table::new(&[
        "bench",
        "structure",
        "visible",
        "median lat (cyc)",
        "p90 lat (cyc)",
        "max",
    ]);
    for id in [WorkloadId::Sha, WorkloadId::Qsort, WorkloadId::Fft] {
        let w = id.build();
        let prep = prepare_or_die(&w, CoreModel::A72);
        for st in [
            HwStructure::RegisterFile,
            HwStructure::Lsq,
            HwStructure::L1d,
            HwStructure::L1i,
        ] {
            let r = avf_campaign(
                &prep,
                st,
                faults,
                sub_seed(seed, &[id.name(), st.name(), "latency"]),
                default_threads(),
            );
            let mut lat: Vec<u64> = r
                .records
                .iter()
                .filter_map(|rec| rec.fpm_cycle.map(|m| m.saturating_sub(rec.cycle)))
                .collect();
            lat.sort_unstable();
            let pick = |q: f64| -> String {
                if lat.is_empty() {
                    "-".into()
                } else {
                    lat[((lat.len() - 1) as f64 * q) as usize].to_string()
                }
            };
            t.row(&[
                id.name().into(),
                st.name().into(),
                format!("{}/{}", lat.len(), faults),
                pick(0.5),
                pick(0.9),
                pick(1.0),
            ]);
        }
        eprintln!("  [{id}] done");
    }
    println!("{}", t.render());
    println!("Short latencies (RF) mean faults are consumed or repaired quickly;");
    println!("long tails (caches) are residency — the exposure that grows when the");
    println!("fault-tolerant code runs 2-4x longer.");
}
