//! Ablation: SVF broken down by the class of the injected IR instruction.
//! Software-level injectors see only live values, and which values are
//! fragile differs sharply by instruction class — context for why SVF
//! diverges from hardware-rooted measurements.

use vulnstack_bench::{all_workloads, figure_header, master_seed, sub_seed};
use vulnstack_core::report::{pct, Table};
use vulnstack_gefin::default_faults;
use vulnstack_vir::instr::InstrClass;

fn main() {
    let faults = default_faults(200);
    let seed = master_seed();
    figure_header("Ablation — SVF per injected IR instruction class", faults);

    let classes = [
        InstrClass::Value,
        InstrClass::Arith,
        InstrClass::Compare,
        InstrClass::Load,
        InstrClass::Syscall,
        InstrClass::Call,
    ];
    let mut headers = vec!["bench"];
    let names: Vec<String> = classes.iter().map(|c| c.name().to_string()).collect();
    headers.extend(names.iter().map(String::as_str));
    let mut t = Table::new(&headers);
    for w in all_workloads() {
        let b = vulnstack_llfi::svf_breakdown(
            &w.module,
            &w.input,
            faults,
            sub_seed(seed, &[w.id.name(), "svf-classes"]),
        );
        let mut row = vec![w.id.name().to_string()];
        for c in classes {
            row.push(match b.get(&c) {
                Some(tally) if tally.total() > 0 => pct(tally.vf().total()),
                _ => "-".to_string(),
            });
        }
        t.row(&row);
        eprintln!("  [{}] done", w.id);
    }
    println!("{}", t.render());
    println!("Cells show the SVF of faults landing on each class ('-' = no samples).");
}
