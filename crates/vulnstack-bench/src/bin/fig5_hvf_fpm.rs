//! Fig. 5 reproduction: HVF split by fault propagation model (WD / WI /
//! WOI / ESC) for the register file, L1i, L1d and L2 on the two VA32
//! models (A9, A15).

use vulnstack_bench::{all_workloads, figure_header, master_seed, prepare_or_die, sub_seed};
use vulnstack_core::report::{pct, Table};
use vulnstack_gefin::{avf_campaign, default_faults, default_threads};
use vulnstack_microarch::ooo::{Fpm, HwStructure};
use vulnstack_microarch::CoreModel;

fn main() {
    let faults = default_faults(150);
    let seed = master_seed();
    figure_header(
        "Fig. 5 — HVF per FPM for RF/L1i/L1d/L2 on A9 and A15",
        faults,
    );

    let structures = [
        HwStructure::RegisterFile,
        HwStructure::L1i,
        HwStructure::L1d,
        HwStructure::L2,
    ];
    for model in [CoreModel::A9, CoreModel::A15] {
        println!("--- {model} ---");
        for st in structures {
            let mut t = Table::new(&["bench", "WD", "WI", "WOI", "ESC", "HVF"]);
            for w in all_workloads() {
                let prep = prepare_or_die(&w, model);
                let r = avf_campaign(
                    &prep,
                    st,
                    faults,
                    sub_seed(seed, &[w.id.name(), model.name(), st.name()]),
                    default_threads(),
                );
                t.row(&[
                    w.id.name().into(),
                    pct(r.fpm.share(Fpm::Wd)),
                    pct(r.fpm.share(Fpm::Wi)),
                    pct(r.fpm.share(Fpm::Woi)),
                    pct(r.fpm.share(Fpm::Esc)),
                    pct(r.hvf()),
                ]);
            }
            println!("[{st}]");
            println!("{}", t.render());
        }
    }
    println!("Shapes to check (paper §IV.B): WD dominates RF and L1d; WI/WOI are");
    println!("large in L1i; ESC appears in the data-holding structures; the mix");
    println!("differs between the two microarchitectures.");
}
