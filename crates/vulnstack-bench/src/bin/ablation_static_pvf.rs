//! Ablation: static PVF (zero-execution binary analysis) vs. dynamic ACE
//! (one fault-free run) vs. injection-measured AVF (statistical campaign),
//! for the register file across the whole suite. Quantifies the paper's
//! §II.A pessimism ordering: each cheaper method bounds the next from
//! above, and the gap is the price of not executing.

use vulnstack_bench::{figure_header, master_seed, sub_seed};
use vulnstack_core::report::Table;
use vulnstack_gefin::{default_faults, default_threads, static_vs_dynamic};
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::WorkloadId;

fn main() {
    let faults = default_faults(120);
    let seed = master_seed();
    figure_header(
        "Ablation — static PVF vs dynamic ACE vs injection AVF (RF)",
        faults,
    );

    let mut t = Table::new(&[
        "bench",
        "model",
        "static PVF",
        "ACE AVF",
        "inj AVF",
        "static/ACE",
        "ACE/inj",
        "lints",
    ]);
    let mut violations = 0usize;
    for id in WorkloadId::ALL {
        let w = id.build();
        for model in [CoreModel::A9, CoreModel::A72] {
            let cmp = static_vs_dynamic(
                &w,
                model,
                faults,
                sub_seed(seed, &[id.name(), model.name(), "static"]),
                default_threads(),
            )
            .unwrap_or_else(|e| {
                eprintln!("error: static-vs-dynamic {}/{model}: {e}", id.name());
                std::process::exit(1);
            });
            let inj = cmp.injected_rf_avf.unwrap_or(0.0);
            if !cmp.ordering_holds(1.0) {
                violations += 1;
            }
            t.row(&[
                id.name().into(),
                model.name().into(),
                format!("{:.4}", cmp.static_rf_pvf),
                format!("{:.4}", cmp.ace_rf_avf),
                format!("{:.4}", inj),
                format!("{:.2}x", cmp.static_rf_pvf / cmp.ace_rf_avf.max(1e-9)),
                // A tiny campaign can measure zero AVF; a ratio against
                // zero is noise, not a number.
                if inj > 0.0 {
                    format!("{:.2}x", cmp.ace_rf_avf / inj)
                } else {
                    "-".to_string()
                },
                cmp.lint_count.to_string(),
            ]);
        }
        eprintln!("  [{id}] done");
    }
    println!("{}", t.render());
    println!("Pessimism ordering static >= ACE >= injection violated {violations} times.");
    println!("Static PVF needs zero simulated cycles; ACE needs one run; injection");
    println!("needs thousands. The widening ratios are the cost of that cheapness.");
}
