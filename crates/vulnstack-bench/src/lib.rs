//! Shared harness code for the figure/table reproduction binaries.
//!
//! Every binary reads two environment knobs:
//!
//! * `VULNSTACK_FAULTS` — injections per (workload, structure/mode)
//!   campaign. The paper used 2,000; defaults here are lower so a full
//!   figure regenerates in minutes. Raise for tighter error margins.
//! * `VULNSTACK_THREADS` — worker threads (defaults to the machine).

use std::collections::BTreeMap;

use vulnstack_core::effects::{Tally, VulnFactor};
use vulnstack_core::stack::{FpmDist, StructureAvf, WeightedAvf};
use vulnstack_gefin::avf::AvfCampaignResult;
use vulnstack_gefin::{
    avf_campaign, default_threads, pvf_campaign, FuncPrepared, Prepared, PvfMode,
};
use vulnstack_isa::Isa;
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::{Workload, WorkloadId};

/// Master seed for all campaigns (override with `VULNSTACK_SEED`).
pub fn master_seed() -> u64 {
    std::env::var("VULNSTACK_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2021)
}

/// Prepares a microarchitectural campaign or exits with a named error:
/// `prepare qsort/A72: <cause>` on stderr and a nonzero exit code. The
/// figure binaries run unattended inside `run_figures.sh`; a panic
/// backtrace there buries which (workload, model) pair failed.
pub fn prepare_or_die(w: &Workload, model: CoreModel) -> Prepared {
    Prepared::new(w, model).unwrap_or_else(|e| {
        eprintln!("error: prepare {}/{model}: {e}", w.id.name());
        std::process::exit(1);
    })
}

/// Derives a sub-seed for a named campaign.
pub fn sub_seed(master: u64, parts: &[&str]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    master.hash(&mut h);
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

/// Per-workload AVF suite across all five structures on one core model.
#[derive(Debug)]
pub struct AvfSuite {
    /// The core model.
    pub model: CoreModel,
    /// Per-structure campaign results.
    pub per_structure: Vec<AvfCampaignResult>,
}

impl AvfSuite {
    /// Runs the suite.
    ///
    /// # Panics
    ///
    /// Panics if preparation fails (a workload that does not run cleanly).
    pub fn run(workload: &Workload, model: CoreModel, faults: usize, seed: u64) -> AvfSuite {
        let prep = Prepared::new(workload, model)
            .unwrap_or_else(|e| panic!("{}/{model}: {e}", workload.id));
        let threads = default_threads();
        let per_structure = HwStructure::ALL
            .iter()
            .map(|&st| {
                let s = sub_seed(seed, &[workload.id.name(), model.name(), st.name()]);
                avf_campaign(&prep, st, faults, s, threads)
            })
            .collect();
        AvfSuite {
            model,
            per_structure,
        }
    }

    /// The size-weighted AVF across the five structures.
    pub fn weighted_avf(&self) -> VulnFactor {
        let structures = self
            .per_structure
            .iter()
            .map(|r| StructureAvf {
                structure: r.structure,
                bits: r.bits,
                tally: r.tally,
            })
            .collect();
        WeightedAvf::new(structures).weighted()
    }

    /// The size-weighted FPM distribution across structures (paper Fig. 6).
    pub fn weighted_fpm(&self) -> BTreeMap<vulnstack_microarch::ooo::Fpm, f64> {
        let parts: Vec<(u64, &FpmDist)> = self
            .per_structure
            .iter()
            .map(|r| (r.bits, &r.fpm))
            .collect();
        FpmDist::weighted_combine(&parts)
    }

    /// The campaign result for one structure.
    pub fn structure(&self, st: HwStructure) -> &AvfCampaignResult {
        self.per_structure
            .iter()
            .find(|r| r.structure == st)
            .expect("all structures present")
    }
}

/// Size-weighted, software-conditional FPM shares for rPVF: combines the
/// per-structure distributions with bit weights, then renormalises over
/// WD/WOI/WI.
pub fn rpvf_weights(suite: &AvfSuite) -> (f64, f64, f64) {
    use vulnstack_microarch::ooo::Fpm;
    let shares = suite.weighted_fpm();
    let wd = shares.get(&Fpm::Wd).copied().unwrap_or(0.0);
    let woi = shares.get(&Fpm::Woi).copied().unwrap_or(0.0);
    let wi = shares.get(&Fpm::Wi).copied().unwrap_or(0.0);
    let sw = wd + woi + wi;
    if sw == 0.0 {
        return (0.0, 0.0, 0.0);
    }
    (wd / sw, woi / sw, wi / sw)
}

/// PVF measurements (typical WD-only plus the full per-FPM set) for one
/// workload on one ISA.
#[derive(Debug)]
pub struct PvfSuite {
    /// WD-population PVF (the "typical PVF" of the literature).
    pub wd: Tally,
    /// WOI-population PVF.
    pub woi: Tally,
    /// WI-population PVF.
    pub wi: Tally,
}

impl PvfSuite {
    /// Runs WD-only (typical PVF).
    pub fn run_wd_only(workload: &Workload, isa: Isa, faults: usize, seed: u64) -> Tally {
        let prep = FuncPrepared::new(workload, isa)
            .unwrap_or_else(|e| panic!("{}/{isa}: {e}", workload.id));
        pvf_campaign(
            &prep,
            PvfMode::Wd,
            faults,
            sub_seed(seed, &[workload.id.name(), isa.name(), "pvf-wd"]),
            default_threads(),
        )
    }

    /// Runs all three FPM populations.
    pub fn run(workload: &Workload, isa: Isa, faults: usize, seed: u64) -> PvfSuite {
        let prep = FuncPrepared::new(workload, isa)
            .unwrap_or_else(|e| panic!("{}/{isa}: {e}", workload.id));
        let threads = default_threads();
        let run = |mode: PvfMode| {
            pvf_campaign(
                &prep,
                mode,
                faults,
                sub_seed(seed, &[workload.id.name(), isa.name(), "pvf", mode.name()]),
                threads,
            )
        };
        PvfSuite {
            wd: run(PvfMode::Wd),
            woi: run(PvfMode::Woi),
            wi: run(PvfMode::Wi),
        }
    }
}

/// Runs the SVF (LLFI-style) campaign for one workload.
pub fn svf_suite(workload: &Workload, faults: usize, seed: u64) -> Tally {
    vulnstack_llfi::svf_campaign(
        &workload.module,
        &workload.input,
        &workload.expected_output,
        faults,
        sub_seed(seed, &[workload.id.name(), "svf"]),
        default_threads(),
    )
}

/// The benchmark subset used by most figures (all ten workloads).
pub fn all_workloads() -> Vec<Workload> {
    WorkloadId::ALL.iter().map(|id| id.build()).collect()
}

/// Standard figure header.
pub fn figure_header(name: &str, faults: usize) {
    println!("=== {name} ===");
    println!(
        "(faults/campaign = {faults}; error margin ≈ {:.1}% at 99% confidence; \
         set VULNSTACK_FAULTS=2000 for the paper's 2.88%)",
        vulnstack_core::stats::error_margin(
            faults as u64,
            u64::MAX / 2,
            0.5,
            vulnstack_core::stats::Z_99
        ) * 100.0
    );
    println!();
}

pub mod case_study {
    //! The software fault-tolerance case study (paper §VI.B, Figs. 10/11):
    //! evaluate a benchmark with and without the duplication+detection
    //! hardening at every layer of the stack.

    use vulnstack_core::report::{pct, pct2, Table};
    use vulnstack_ft::harden;
    use vulnstack_gefin::default_faults;
    use vulnstack_microarch::CoreModel;
    use vulnstack_workloads::{Workload, WorkloadId};

    use crate::{figure_header, master_seed, svf_suite, AvfSuite, PvfSuite};

    /// Builds the hardened variant of a workload.
    pub fn hardened_workload(id: WorkloadId) -> Workload {
        let base = id.build();
        let module = harden(&base.module).expect("hardening verifies");
        Workload { module, ..base }
    }

    /// Runs the full case study for `id` and prints the paper-style
    /// panels.
    pub fn run_case_study(id: WorkloadId, figure: &str) {
        let faults = default_faults(150);
        let seed = master_seed();
        figure_header(
            &format!("{figure} — fault-tolerance case study on {id} (A72)"),
            faults,
        );

        let base = id.build();
        let hard = hardened_workload(id);

        // Panel (a): per-structure AVF, w/o and w/.
        let suite_wo = AvfSuite::run(&base, CoreModel::A72, faults, seed);
        eprintln!("  [avf w/o] done");
        let suite_w = AvfSuite::run(&hard, CoreModel::A72, faults, seed);
        eprintln!("  [avf w/] done");
        let mut t = Table::new(&[
            "structure",
            "w/o SDC",
            "w/o Crash",
            "w/o tot",
            "w/ SDC",
            "w/ Crash",
            "w/ tot",
            "w/ detected",
        ]);
        for (a, b) in suite_wo.per_structure.iter().zip(&suite_w.per_structure) {
            let (va, vb) = (a.avf(), b.avf());
            t.row(&[
                a.structure.name().into(),
                pct2(va.sdc),
                pct2(va.crash),
                pct2(va.total()),
                pct2(vb.sdc),
                pct2(vb.crash),
                pct2(vb.total()),
                pct2(vb.detected),
            ]);
        }
        println!("(a) per-structure AVF");
        println!("{}", t.render());

        // Panel (b): weighted AVF.
        let (aw, ah) = (suite_wo.weighted_avf(), suite_w.weighted_avf());
        let mut t = Table::new(&["variant", "SDC", "Crash", "total"]);
        t.row(&["w/o".into(), pct2(aw.sdc), pct2(aw.crash), pct2(aw.total())]);
        t.row(&["w/".into(), pct2(ah.sdc), pct2(ah.crash), pct2(ah.total())]);
        println!("(b) size-weighted cross-layer AVF");
        println!("{}", t.render());
        let delta = if aw.total() > 0.0 {
            ah.total() / aw.total() - 1.0
        } else {
            0.0
        };
        println!("    AVF change with hardening: {:+.0}%\n", delta * 100.0);

        // Panel (c): PVF (WD population, va64).
        let pw = PvfSuite::run_wd_only(&base, vulnstack_isa::Isa::Va64, faults, seed).vf();
        let ph = PvfSuite::run_wd_only(&hard, vulnstack_isa::Isa::Va64, faults, seed).vf();
        eprintln!("  [pvf] done");
        let mut t = Table::new(&["variant", "SDC", "Crash", "total", "detected"]);
        t.row(&[
            "w/o".into(),
            pct(pw.sdc),
            pct(pw.crash),
            pct(pw.total()),
            pct(pw.detected),
        ]);
        t.row(&[
            "w/".into(),
            pct(ph.sdc),
            pct(ph.crash),
            pct(ph.total()),
            pct(ph.detected),
        ]);
        println!("(c) PVF");
        println!("{}", t.render());
        if ph.total() > 0.0 {
            println!("    PVF reduction: {:.1}x\n", pw.total() / ph.total());
        }

        // Panel (d): SVF.
        let sw = svf_suite(&base, faults, seed).vf();
        let sh = svf_suite(&hard, faults, seed).vf();
        eprintln!("  [svf] done");
        let mut t = Table::new(&["variant", "SDC", "Crash", "total", "detected"]);
        t.row(&[
            "w/o".into(),
            pct(sw.sdc),
            pct(sw.crash),
            pct(sw.total()),
            pct(sw.detected),
        ]);
        t.row(&[
            "w/".into(),
            pct(sh.sdc),
            pct(sh.crash),
            pct(sh.total()),
            pct(sh.detected),
        ]);
        println!("(d) SVF");
        println!("{}", t.render());
        if sh.total() > 0.0 {
            println!("    SVF reduction: {:.1}x\n", sw.total() / sh.total());
        }

        // Runtime inflation (the mechanism behind the AVF increase).
        let prep_wo = vulnstack_gefin::Prepared::new(&base, CoreModel::A72).unwrap();
        let prep_w = vulnstack_gefin::Prepared::new(&hard, CoreModel::A72).unwrap();
        println!(
            "execution time: {} -> {} cycles ({:.1}x)",
            prep_wo.golden.cycles,
            prep_w.golden.cycles,
            prep_w.golden.cycles as f64 / prep_wo.golden.cycles as f64
        );
        println!("Shapes to check (paper): PVF and SVF drop by multiple x (detected");
        println!("faults excluded), while the cross-layer AVF *increases* — longer");
        println!("execution means longer residency and more crashes.");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_seeds_are_stable_and_distinct() {
        let a = sub_seed(1, &["sha", "A72", "RF"]);
        let b = sub_seed(1, &["sha", "A72", "RF"]);
        let c = sub_seed(1, &["sha", "A72", "LSQ"]);
        let d = sub_seed(2, &["sha", "A72", "RF"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn rpvf_weights_normalise_over_software_fpms() {
        // Construct a suite-like FPM mix by hand through the public API is
        // heavyweight; check the arithmetic contract on the helper's
        // underlying share math instead.
        use vulnstack_core::stack::FpmDist;
        use vulnstack_microarch::ooo::Fpm;
        let mut d = FpmDist::new();
        for _ in 0..6 {
            d.add(Some(Fpm::Wd));
        }
        for _ in 0..3 {
            d.add(Some(Fpm::Wi));
        }
        for _ in 0..1 {
            d.add(Some(Fpm::Esc));
        }
        let sw: f64 = [Fpm::Wd, Fpm::Woi, Fpm::Wi]
            .iter()
            .map(|&f| d.software_share(f))
            .sum();
        assert!((sw - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_workloads_builds_ten() {
        assert_eq!(all_workloads().len(), 10);
    }
}
