//! Criterion benchmark for the checkpoint-and-restore injection engine:
//! one late-in-the-run register-file injection, from-scratch vs restored
//! from the nearest golden checkpoint. The from-scratch run re-simulates
//! ~3/4 of the golden run before it can flip its bit; the restored run
//! simulates at most one checkpoint interval.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vulnstack_gefin::avf::run_one_with;
use vulnstack_gefin::{InjectEngine, Prepared};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::WorkloadId;

fn bench_checkpoint_restore(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint_restore");
    g.sample_size(10);
    let w = WorkloadId::Crc32.build();
    let prep = Prepared::new(&w, CoreModel::A72).unwrap();
    let late_cycle = prep.golden.cycles * 3 / 4;

    for (name, engine) in [
        ("from_scratch", InjectEngine::FromScratch),
        ("checkpointed", InjectEngine::Checkpointed),
    ] {
        g.bench_function(BenchmarkId::new("late_rf_injection", name), |b| {
            b.iter(|| run_one_with(&prep, HwStructure::RegisterFile, late_cycle, 1234, engine));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_checkpoint_restore);
criterion_main!(benches);
