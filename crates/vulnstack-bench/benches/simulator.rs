//! Criterion benchmarks for the simulation substrates: cycle-level core
//! throughput per model, functional core, IR interpreter, compiler, and
//! the fault-tolerance pass slowdown (the paper's 2.1×/2.5× execution-time
//! claims).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_ft::harden;
use vulnstack_kernel::SystemImage;
use vulnstack_microarch::{CoreModel, FuncCore, OooCore};
use vulnstack_vir::interp::Interpreter;
use vulnstack_workloads::WorkloadId;

fn bench_ooo_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("ooo_core");
    g.sample_size(10);
    for model in CoreModel::ALL {
        let cfg = model.config();
        let w = WorkloadId::Crc32.build();
        let compiled = compile(&w.module, cfg.isa, &CompileOpts::default()).unwrap();
        let image = SystemImage::build(&compiled, &w.input).unwrap();
        g.bench_with_input(
            BenchmarkId::new("crc32", model.name()),
            &image,
            |b, image| {
                b.iter(|| {
                    let out = OooCore::new(&cfg, image).run(100_000_000);
                    assert!(out.sim.instrs > 0);
                    out.sim.cycles
                });
            },
        );
    }
    g.finish();
}

fn bench_func_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("func_core");
    g.sample_size(10);
    let w = WorkloadId::Crc32.build();
    for isa in [vulnstack_isa::Isa::Va32, vulnstack_isa::Isa::Va64] {
        let compiled = compile(&w.module, isa, &CompileOpts::default()).unwrap();
        let image = SystemImage::build(&compiled, &w.input).unwrap();
        g.bench_with_input(BenchmarkId::new("crc32", isa.name()), &image, |b, image| {
            b.iter(|| FuncCore::new(image).run(100_000_000).instrs);
        });
    }
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    g.sample_size(10);
    for id in [WorkloadId::Crc32, WorkloadId::Sha] {
        let w = id.build();
        g.bench_with_input(BenchmarkId::new("run", id.name()), &w, |b, w| {
            b.iter(|| {
                Interpreter::new(&w.module)
                    .with_input(w.input.clone())
                    .run()
                    .unwrap()
                    .dyn_instrs
            });
        });
    }
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    let w = WorkloadId::Rijndael.build();
    for isa in [vulnstack_isa::Isa::Va32, vulnstack_isa::Isa::Va64] {
        g.bench_with_input(BenchmarkId::new("rijndael", isa.name()), &w, |b, w| {
            b.iter(|| {
                compile(&w.module, isa, &CompileOpts::default())
                    .unwrap()
                    .text
                    .len()
            });
        });
    }
    g.finish();
}

fn bench_ft_slowdown(c: &mut Criterion) {
    // Measures the dynamic-length inflation of the hardening pass on the
    // two case-study benchmarks (the paper reports 2.1x for sha and 2.5x
    // for smooth); reported here as interpreted wall time.
    let mut g = c.benchmark_group("ft_slowdown");
    g.sample_size(10);
    for id in [WorkloadId::Sha, WorkloadId::Smooth] {
        let w = id.build();
        let h = harden(&w.module).unwrap();
        g.bench_with_input(BenchmarkId::new("baseline", id.name()), &w, |b, w| {
            b.iter(|| {
                Interpreter::new(&w.module)
                    .with_input(w.input.clone())
                    .run()
                    .unwrap()
                    .dyn_instrs
            });
        });
        g.bench_with_input(
            BenchmarkId::new("hardened", id.name()),
            &(&h, &w),
            |b, (h, w)| {
                b.iter(|| {
                    Interpreter::new(h)
                        .with_input(w.input.clone())
                        .run()
                        .unwrap()
                        .dyn_instrs
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ooo_core,
    bench_func_core,
    bench_interpreter,
    bench_compiler,
    bench_ft_slowdown
);
criterion_main!(benches);
