//! Criterion benchmarks for the fault-injection layers themselves: cost
//! of a single microarchitectural injection run, an architecture-level
//! (PVF) run, and a software-level (SVF) run — the throughput hierarchy
//! the paper discusses (software-level fast, microarchitecture-level
//! slow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vulnstack_gefin::avf::run_one;
use vulnstack_gefin::{FuncPrepared, Prepared};
use vulnstack_llfi::{golden_run, run_one as svf_run_one};
use vulnstack_microarch::func::{PvfFault, PvfMutation};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::{CoreModel, FuncCore};
use vulnstack_vir::interp::{SwFault, SwFaultModel};
use vulnstack_workloads::WorkloadId;

fn bench_injection_layers(c: &mut Criterion) {
    let mut g = c.benchmark_group("injection_layers");
    g.sample_size(10);
    let w = WorkloadId::Crc32.build();

    // Microarchitecture level (AVF): one register-file injection run.
    let prep = Prepared::new(&w, CoreModel::A72).unwrap();
    let mid_cycle = prep.golden.cycles / 2;
    g.bench_function(BenchmarkId::new("avf_run", "crc32/A72/RF"), |b| {
        b.iter(|| run_one(&prep, HwStructure::RegisterFile, mid_cycle, 1234));
    });

    // Architecture level (PVF): one persistent register flip.
    let fprep = FuncPrepared::new(&w, vulnstack_isa::Isa::Va64).unwrap();
    let fault = PvfFault {
        at_instr: fprep.golden.instrs / 2,
        mutation: PvfMutation::FlipReg {
            reg: vulnstack_isa::Reg(3),
            bit: 7,
        },
    };
    g.bench_function(BenchmarkId::new("pvf_run", "crc32/va64"), |b| {
        b.iter(|| {
            FuncCore::new(&fprep.image)
                .with_fault(fault)
                .run(fprep.budget)
                .instrs
        });
    });

    // Software level (SVF): one instantaneous IR destination flip.
    let golden = golden_run(&w.module, &w.input);
    let sw = SwFault {
        target: golden.injectable / 2,
        bit: 11,
        model: SwFaultModel::BitFlip,
    };
    g.bench_function(BenchmarkId::new("svf_run", "crc32"), |b| {
        b.iter(|| svf_run_one(&w.module, &w.input, &golden, sw));
    });

    g.finish();
}

criterion_group!(benches, bench_injection_layers);
criterion_main!(benches);
