//! # vulnstack-ft
//!
//! Software-based fault tolerance as an IR pass, reproducing the family of
//! techniques the paper's case study uses (its reference \[35\]: a
//! combination of AN-encoding-style information redundancy and duplicated
//! instructions à la EDDI/SWIFT):
//!
//! * every value-producing computation is **duplicated** into a shadow
//!   virtual register (loads re-read memory through a shadow address);
//! * before every *externalisation point* — store, conditional branch,
//!   call/syscall argument, return — the original and shadow are compared
//!   and any mismatch routes to `detect()`, which terminates the program
//!   with a Detected outcome (recoverable by re-execution, so the paper
//!   excludes detected faults from the vulnerability).
//!
//! The pass roughly doubles the dynamic instruction count (the paper
//! reports 2.1×–2.5× runtime for its case-study benchmarks), which is
//! exactly the mechanism behind the paper's headline finding: PVF/SVF
//! drop sharply while the longer residency *increases* the true
//! cross-layer AVF.
//!
//! # Example
//!
//! ```
//! use vulnstack_ft::harden;
//! use vulnstack_workloads::WorkloadId;
//!
//! let w = WorkloadId::Crc32.build();
//! let hardened = harden(&w.module).unwrap();
//! assert!(hardened.num_instrs() > w.module.num_instrs() * 2);
//! ```

use vulnstack_vir::verify::{verify_module, VerifyError};
use vulnstack_vir::{Block, BlockId, CmpPred, Function, Module, Operand, VInstr, VReg};

/// Detection exit code used by inserted checks.
pub const DETECT_CODE: i32 = 0x5D;

/// Hardens every function of `module` with duplication + detection
/// checks.
///
/// # Errors
///
/// Returns a [`VerifyError`] if the transformed module fails verification
/// (which would indicate a bug in the pass).
pub fn harden(module: &Module) -> Result<Module, VerifyError> {
    let mut out = module.clone();
    for f in &mut out.functions {
        harden_function(f);
    }
    verify_module(&out)?;
    Ok(out)
}

/// Shadow register for `v` in a function that originally had `n` vregs.
fn shadow(v: VReg, n: u32) -> VReg {
    VReg(v.0 + n)
}

fn shadow_op(o: &Operand, n: u32) -> Operand {
    match o {
        Operand::Reg(r) => Operand::Reg(shadow(*r, n)),
        Operand::Imm(v) => Operand::Imm(*v),
    }
}

/// A block under construction, split into segments at each inserted
/// check (a check's `CondBr` must terminate its block).
struct Splitter {
    segments: Vec<Vec<VInstr>>,
    cur: Vec<VInstr>,
    n: u32,
    detect_bb: BlockId,
    next_vreg: u32,
}

impl Splitter {
    /// Re-seeds a shadow from its original (`shadow = v + 0`).
    fn reseed(out: &mut Vec<VInstr>, v: VReg, n: u32) {
        out.push(VInstr::Bin {
            dst: shadow(v, n),
            op: vulnstack_vir::BinOp::Add,
            a: Operand::Reg(v),
            b: Operand::Imm(0),
        });
    }

    /// Emits `if (o != shadow(o)) goto detect`, splitting the segment.
    fn check(&mut self, o: &Operand) {
        let Operand::Reg(r) = o else { return };
        let c = VReg(self.next_vreg);
        self.next_vreg += 1;
        self.cur.push(VInstr::Cmp {
            dst: c,
            pred: CmpPred::Ne,
            a: Operand::Reg(*r),
            b: Operand::Reg(shadow(*r, self.n)),
        });
        // The else target (the next segment) is patched afterwards.
        self.cur.push(VInstr::CondBr {
            cond: Operand::Reg(c),
            then_bb: self.detect_bb,
            else_bb: BlockId(u32::MAX),
        });
        let seg = std::mem::take(&mut self.cur);
        self.segments.push(seg);
    }

    fn finish(mut self) -> (Vec<Vec<VInstr>>, u32) {
        self.segments.push(self.cur);
        (self.segments, self.next_vreg)
    }
}

fn harden_function(f: &mut Function) {
    let n = f.num_vregs;
    let nblocks = f.blocks.len();
    let detect_bb = BlockId(nblocks as u32);
    let mut next_vreg = 2 * n;

    let mut replaced: Vec<Vec<VInstr>> = Vec::with_capacity(nblocks);
    let mut appended: Vec<Vec<VInstr>> = Vec::new();

    for (b, block) in f.blocks.iter().enumerate() {
        let mut sp = Splitter {
            segments: Vec::new(),
            cur: Vec::new(),
            n,
            detect_bb,
            next_vreg,
        };
        for ins in &block.instrs {
            match ins {
                VInstr::Const { dst, value } => {
                    sp.cur.push(ins.clone());
                    sp.cur.push(VInstr::Const {
                        dst: shadow(*dst, n),
                        value: *value,
                    });
                }
                VInstr::Bin { dst, op, a, b } => {
                    sp.cur.push(ins.clone());
                    sp.cur.push(VInstr::Bin {
                        dst: shadow(*dst, n),
                        op: *op,
                        a: shadow_op(a, n),
                        b: shadow_op(b, n),
                    });
                }
                VInstr::Cmp { dst, pred, a, b } => {
                    sp.cur.push(ins.clone());
                    sp.cur.push(VInstr::Cmp {
                        dst: shadow(*dst, n),
                        pred: *pred,
                        a: shadow_op(a, n),
                        b: shadow_op(b, n),
                    });
                }
                VInstr::Select { dst, cond, a, b } => {
                    sp.cur.push(ins.clone());
                    sp.cur.push(VInstr::Select {
                        dst: shadow(*dst, n),
                        cond: shadow_op(cond, n),
                        a: shadow_op(a, n),
                        b: shadow_op(b, n),
                    });
                }
                VInstr::Load {
                    dst,
                    width,
                    base,
                    offset,
                } => {
                    sp.cur.push(ins.clone());
                    // Shadow load re-reads memory through the shadow base.
                    sp.cur.push(VInstr::Load {
                        dst: shadow(*dst, n),
                        width: *width,
                        base: shadow_op(base, n),
                        offset: *offset,
                    });
                }
                VInstr::GlobalAddr { dst, global } => {
                    sp.cur.push(ins.clone());
                    sp.cur.push(VInstr::GlobalAddr {
                        dst: shadow(*dst, n),
                        global: *global,
                    });
                }
                VInstr::SlotAddr { dst, slot } => {
                    sp.cur.push(ins.clone());
                    sp.cur.push(VInstr::SlotAddr {
                        dst: shadow(*dst, n),
                        slot: *slot,
                    });
                }
                VInstr::Store {
                    width,
                    value,
                    base,
                    offset,
                } => {
                    sp.check(value);
                    sp.check(base);
                    sp.cur.push(VInstr::Store {
                        width: *width,
                        value: *value,
                        base: *base,
                        offset: *offset,
                    });
                }
                VInstr::Call { dst, func, args } => {
                    for a in args {
                        sp.check(a);
                    }
                    sp.cur.push(VInstr::Call {
                        dst: *dst,
                        func: *func,
                        args: args.clone(),
                    });
                    if let Some(d) = dst {
                        // The call boundary is unprotected (SWIFT-style):
                        // re-seed the shadow from the returned value.
                        Splitter::reseed(&mut sp.cur, *d, n);
                    }
                }
                VInstr::Syscall { dst, sc, args } => {
                    for a in args {
                        sp.check(a);
                    }
                    sp.cur.push(VInstr::Syscall {
                        dst: *dst,
                        sc: *sc,
                        args: args.clone(),
                    });
                    if let Some(d) = dst {
                        Splitter::reseed(&mut sp.cur, *d, n);
                    }
                }
                VInstr::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    sp.check(cond);
                    sp.cur.push(VInstr::CondBr {
                        cond: *cond,
                        then_bb: *then_bb,
                        else_bb: *else_bb,
                    });
                }
                VInstr::Ret { value } => {
                    if let Some(v) = value {
                        sp.check(v);
                    }
                    sp.cur.push(ins.clone());
                }
                VInstr::Br { .. } => {
                    sp.cur.push(ins.clone());
                }
            }
        }
        let (mut segments, nv) = sp.finish();
        next_vreg = nv;

        // Wire the segment chain. Segment 0 replaces block b; the rest are
        // appended after the detect block.
        let mut global_ids: Vec<u32> = Vec::with_capacity(segments.len());
        global_ids.push(b as u32);
        for k in 1..segments.len() {
            global_ids.push((nblocks + 1 + appended.len() + (k - 1)) as u32);
        }
        for (k, seg) in segments.iter_mut().enumerate() {
            if k + 1 < global_ids.len() {
                match seg.last_mut() {
                    Some(VInstr::CondBr { else_bb, .. }) => *else_bb = BlockId(global_ids[k + 1]),
                    other => unreachable!("non-final segment must end in a check: {other:?}"),
                }
            }
        }
        let mut iter = segments.into_iter();
        replaced.push(iter.next().expect("at least one segment"));
        appended.extend(iter);
    }

    // Parameter shadows at function entry.
    let mut entry = Vec::with_capacity(f.num_params as usize);
    for i in 0..f.num_params {
        Splitter::reseed(&mut entry, VReg(i), n);
    }
    entry.extend(std::mem::take(&mut replaced[0]));
    replaced[0] = entry;

    // Assemble: originals, detect block, appended segments.
    let mut new_blocks: Vec<Block> = replaced
        .into_iter()
        .map(|instrs| Block { instrs })
        .collect();
    new_blocks.push(Block {
        instrs: vec![
            VInstr::Syscall {
                dst: None,
                sc: vulnstack_isa::Syscall::Detect,
                args: vec![Operand::Imm(DETECT_CODE)],
            },
            VInstr::Ret { value: None },
        ],
    });
    new_blocks.extend(appended.into_iter().map(|instrs| Block { instrs }));

    f.blocks = new_blocks;
    f.num_vregs = next_vreg;
}

/// Error from a hardened streaming campaign: either the hardening pass
/// produced an IR that fails verification, or the underlying sink /
/// journal failed.
#[derive(Debug)]
pub enum HardenedSvfError {
    /// The duplication pass produced invalid IR (a bug in the pass).
    Harden(VerifyError),
    /// The streaming campaign's journal or spill file failed.
    Journal(vulnstack_core::JournalError),
}

impl std::fmt::Display for HardenedSvfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Harden(e) => write!(f, "harden: {e}"),
            Self::Journal(e) => write!(f, "journal: {e}"),
        }
    }
}

impl std::error::Error for HardenedSvfError {}

/// Hardens `module` and runs a streaming, bounded-memory SVF campaign
/// (`vulnstack_llfi::svf_campaign_streamed`) over the hardened IR: each
/// settled injection flows through the bounded sink channel into the
/// tally fold instead of accumulating in RAM. Callers labelling journals
/// should pass a `…+ft` workload name in
/// [`vulnstack_core::JournalOpts`] so hardened and unhardened campaigns
/// never share a fingerprint.
///
/// # Errors
///
/// [`HardenedSvfError::Harden`] if the pass output fails verification,
/// [`HardenedSvfError::Journal`] for journal/spill failures.
#[allow(clippy::too_many_arguments)]
pub fn svf_campaign_streamed_hardened(
    module: &Module,
    input: &[u8],
    expected_output: &[u8],
    n: usize,
    seed: u64,
    threads: usize,
    journal: Option<&vulnstack_core::JournalOpts<'_>>,
    stream: vulnstack_core::StreamOpts<'_>,
    metrics: Option<&vulnstack_core::trace::CampaignMetrics>,
) -> Result<vulnstack_llfi::SvfStreamed, HardenedSvfError> {
    let hardened = harden(module).map_err(HardenedSvfError::Harden)?;
    vulnstack_llfi::svf_campaign_streamed(
        &hardened,
        input,
        expected_output,
        n,
        seed,
        threads,
        journal,
        stream,
        metrics,
    )
    .map_err(HardenedSvfError::Journal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnstack_vir::interp::{Interpreter, RunStatus, SwFault, SwFaultModel};
    use vulnstack_workloads::WorkloadId;

    #[test]
    fn hardened_workloads_still_produce_golden_output() {
        for id in [
            WorkloadId::Sha,
            WorkloadId::Smooth,
            WorkloadId::Crc32,
            WorkloadId::Qsort,
        ] {
            let w = id.build();
            let h = harden(&w.module).unwrap_or_else(|e| panic!("{id}: {e}"));
            let out = Interpreter::new(&h)
                .with_input(w.input.clone())
                .run()
                .unwrap_or_else(|e| panic!("{id}: {e}"));
            assert_eq!(out.status, RunStatus::Exited(0), "{id}");
            assert_eq!(
                out.output, w.expected_output,
                "{id}: hardened output differs"
            );
        }
    }

    #[test]
    fn hardening_roughly_doubles_dynamic_length() {
        let w = WorkloadId::Sha.build();
        let h = harden(&w.module).unwrap();
        let base = Interpreter::new(&w.module)
            .with_input(w.input.clone())
            .run()
            .unwrap();
        let hard = Interpreter::new(&h)
            .with_input(w.input.clone())
            .run()
            .unwrap();
        let ratio = hard.dyn_instrs as f64 / base.dyn_instrs as f64;
        assert!(
            (1.8..4.5).contains(&ratio),
            "slowdown {ratio:.2} outside the paper's 2x-4x envelope"
        );
    }

    #[test]
    fn faults_in_checked_values_are_detected() {
        // Inject into many dynamic positions of the hardened module; a
        // solid fraction must be caught by the checks.
        let w = WorkloadId::Crc32.build();
        let h = harden(&w.module).unwrap();
        let golden = Interpreter::new(&h)
            .with_input(w.input.clone())
            .run()
            .unwrap();
        assert_eq!(golden.status, RunStatus::Exited(0));
        let mut detected = 0;
        let mut sdc = 0;
        let n = 60u64;
        for i in 0..n {
            let target = (golden.injectable / n) * i;
            let out = Interpreter::new(&h)
                .with_input(w.input.clone())
                .with_budget(golden.dyn_instrs * 8)
                .with_fault(SwFault {
                    target,
                    bit: (i % 31) as u8,
                    model: SwFaultModel::BitFlip,
                })
                .run()
                .unwrap();
            match out.status {
                RunStatus::Detected(code) => {
                    assert_eq!(code, DETECT_CODE);
                    detected += 1;
                }
                RunStatus::Exited(0) if out.output == w.expected_output => {}
                _ => sdc += 1,
            }
        }
        assert!(detected > 0, "no faults detected at all");
        // The scheme targets SDCs: detections should dominate escapes.
        assert!(detected >= sdc, "detected={detected} escaped={sdc}");
    }

    #[test]
    fn streamed_hardened_campaign_matches_direct_hardened_run() {
        let w = WorkloadId::Crc32.build();
        let streamed = svf_campaign_streamed_hardened(
            &w.module,
            &w.input,
            &w.expected_output,
            40,
            7,
            2,
            None,
            vulnstack_core::StreamOpts::from_env(),
            None,
        )
        .unwrap();
        let hardened = harden(&w.module).unwrap();
        let direct =
            vulnstack_llfi::svf_campaign(&hardened, &w.input, &w.expected_output, 40, 7, 2);
        assert_eq!(streamed.tally, direct);
        assert_eq!(streamed.stats.executed, 40);
        assert!(streamed.quarantined.is_empty());
    }

    #[test]
    fn hardening_preserves_the_original_module() {
        let w = WorkloadId::Fft.build();
        let before = w.module.num_instrs();
        let _ = harden(&w.module).unwrap();
        assert_eq!(w.module.num_instrs(), before);
    }
}
