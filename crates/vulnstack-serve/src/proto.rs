//! Wire protocol: line-delimited JSON RPC.
//!
//! Every request is one JSON object on one `\n`-terminated line:
//!
//! ```text
//! {"id":1,"verb":"submit","spec":{...}}
//! {"id":2,"verb":"subscribe","handle":"c41b..."}
//! ```
//!
//! Every response echoes the request `id`. Success responses carry
//! `"ok":true` plus verb-specific fields; failures carry an `"error"`
//! object with a stable machine-readable `code` and a human-readable
//! `message`. Subscription events are pushed as id-less objects with an
//! `"event"` discriminator (`record`, `done`).
//!
//! The framing layer is deliberately paranoid: lines are capped at
//! [`MAX_LINE`] bytes (an oversized line is consumed to its newline and
//! answered with an error, the connection survives), malformed JSON
//! never panics, and unknown verbs/handles get structured errors.

use std::io::{BufRead, ErrorKind};

use crate::json::{self, obj, s, Value};

/// Longest request line the daemon will buffer, terminator included.
pub const MAX_LINE: usize = 64 * 1024;

/// Stable error codes. Clients dispatch on these, not on messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The line exceeded [`MAX_LINE`] bytes.
    OversizedLine,
    /// The document parsed but is not a request object with an
    /// integer `id`.
    BadRequest,
    /// The `verb` field is missing or names no known verb.
    UnknownVerb,
    /// The verb's parameters are missing or malformed.
    BadParams,
    /// The referenced campaign handle does not exist.
    UnknownHandle,
    /// The daemon failed to execute an otherwise valid request.
    Internal,
}

impl ErrorCode {
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::OversizedLine => "oversized-line",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownVerb => "unknown-verb",
            ErrorCode::BadParams => "bad-params",
            ErrorCode::UnknownHandle => "unknown-handle",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A parsed request: `id` for response correlation, `verb`, and the
/// whole document for verb-specific parameter extraction.
#[derive(Debug, Clone)]
pub struct Request {
    pub id: u64,
    pub verb: String,
    pub body: Value,
}

/// One framed read: a request, a protocol error (answerable — the
/// connection survives), or end-of-stream.
#[derive(Debug)]
pub enum Frame {
    Request(Request),
    /// Protocol violation. `id` is the request id when one could be
    /// recovered from the document, so the client can correlate.
    Bad {
        id: Option<u64>,
        code: ErrorCode,
        message: String,
    },
    Eof,
}

/// Reads one `\n`-terminated line, enforcing [`MAX_LINE`]. An oversized
/// line is drained to its newline so the stream stays framed.
pub fn read_line(r: &mut impl BufRead) -> std::io::Result<Option<Result<String, usize>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = 0usize;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() && overflow == 0 {
                    return Ok(None);
                }
                // Unterminated trailing data: treat as a (short) line.
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if buf.len() >= MAX_LINE {
                    overflow += 1;
                } else {
                    buf.push(byte[0]);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if overflow > 0 {
        return Ok(Some(Err(MAX_LINE + overflow)));
    }
    Ok(Some(Ok(String::from_utf8_lossy(&buf).into_owned())))
}

/// Parses one line into a [`Frame`]. Never panics on any input.
pub fn decode_line(line: Result<&str, usize>) -> Frame {
    let line = match line {
        Ok(l) => l,
        Err(len) => {
            return Frame::Bad {
                id: None,
                code: ErrorCode::OversizedLine,
                message: format!("line of {len} bytes exceeds the {MAX_LINE}-byte cap"),
            }
        }
    };
    if line.trim().is_empty() {
        return Frame::Bad {
            id: None,
            code: ErrorCode::BadRequest,
            message: "empty line".to_string(),
        };
    }
    let doc = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return Frame::Bad {
                id: None,
                code: ErrorCode::BadJson,
                message: e.to_string(),
            }
        }
    };
    let id = doc.get("id").and_then(Value::as_u64);
    let Value::Obj(_) = doc else {
        return Frame::Bad {
            id,
            code: ErrorCode::BadRequest,
            message: "request must be a JSON object".to_string(),
        };
    };
    let Some(id) = id else {
        return Frame::Bad {
            id: None,
            code: ErrorCode::BadRequest,
            message: "request needs an integer \"id\"".to_string(),
        };
    };
    let Some(verb) = doc.get("verb").and_then(Value::as_str) else {
        return Frame::Bad {
            id: Some(id),
            code: ErrorCode::UnknownVerb,
            message: "request needs a string \"verb\"".to_string(),
        };
    };
    Frame::Request(Request {
        id,
        verb: verb.to_string(),
        body: doc.clone(),
    })
}

/// Reads and decodes one frame from the stream.
pub fn read_frame(r: &mut impl BufRead) -> std::io::Result<Frame> {
    match read_line(r)? {
        None => Ok(Frame::Eof),
        Some(line) => Ok(decode_line(line.as_deref().map_err(|e| *e))),
    }
}

/// A success response: `{"id":N,"ok":true, ...fields}`, one line.
pub fn ok_response(id: u64, mut fields: Vec<(&str, Value)>) -> String {
    let mut all = vec![("id", json::n(id)), ("ok", Value::Bool(true))];
    all.append(&mut fields);
    json::write(&obj(all)) + "\n"
}

/// An error response: `{"id":N,"ok":false,"error":{"code":..,"message":..}}`.
/// `id` 0 is used when no request id could be recovered.
pub fn err_response(id: Option<u64>, code: ErrorCode, message: &str) -> String {
    json::write(&obj(vec![
        ("id", json::n(id.unwrap_or(0))),
        ("ok", Value::Bool(false)),
        (
            "error",
            obj(vec![("code", s(code.name())), ("message", s(message))]),
        ),
    ])) + "\n"
}

/// A pushed subscription event (no request id).
pub fn event(kind: &str, mut fields: Vec<(&str, Value)>) -> String {
    let mut all = vec![("event", s(kind))];
    all.append(&mut fields);
    json::write(&obj(all)) + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn frame(text: &str) -> Frame {
        read_frame(&mut BufReader::new(text.as_bytes())).unwrap()
    }

    #[test]
    fn well_formed_request_decodes() {
        match frame("{\"id\":3,\"verb\":\"list\"}\n") {
            Frame::Request(r) => {
                assert_eq!(r.id, 3);
                assert_eq!(r.verb, "list");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_json_is_answerable_not_fatal() {
        match frame("{nope\n") {
            Frame::Bad { code, .. } => assert_eq!(code, ErrorCode::BadJson),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_line_is_drained_and_reported() {
        let big = "x".repeat(MAX_LINE + 10) + "\n{\"id\":1,\"verb\":\"list\"}\n";
        let mut r = BufReader::new(big.as_bytes());
        match read_frame(&mut r).unwrap() {
            Frame::Bad { code, .. } => assert_eq!(code, ErrorCode::OversizedLine),
            other => panic!("{other:?}"),
        }
        // The stream recovered: the next frame parses.
        match read_frame(&mut r).unwrap() {
            Frame::Request(req) => assert_eq!(req.verb, "list"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_id_or_verb_is_flagged() {
        match frame("{\"verb\":\"list\"}\n") {
            Frame::Bad { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("{other:?}"),
        }
        match frame("{\"id\":9}\n") {
            Frame::Bad { id, code, .. } => {
                assert_eq!(id, Some(9));
                assert_eq!(code, ErrorCode::UnknownVerb);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_and_truncated_frames() {
        match frame("") {
            Frame::Eof => {}
            other => panic!("{other:?}"),
        }
        // A truncated (no-newline) trailing line still decodes.
        match frame("{\"id\":1,\"verb\":\"list\"}") {
            Frame::Request(r) => assert_eq!(r.id, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_are_single_lines() {
        let ok = ok_response(4, vec![("handle", s("abc"))]);
        assert!(ok.ends_with('\n') && !ok[..ok.len() - 1].contains('\n'));
        assert!(ok.contains("\"ok\":true"));
        let err = err_response(Some(4), ErrorCode::UnknownHandle, "no such campaign");
        assert!(err.contains("\"code\":\"unknown-handle\""));
    }
}
