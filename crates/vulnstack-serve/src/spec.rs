//! Campaign specifications: what a client submits.
//!
//! A spec is a JSON object naming an engine plus its parameters.
//! Parsing normalizes it — defaults filled in, every field validated
//! against the same vocabularies the CLI accepts — and the campaign
//! handle is the FNV-1a hash of the *canonical* normalized form, so the
//! same campaign submitted twice (or resubmitted after a daemon
//! restart) maps onto the same handle and the same journal file.

use std::collections::BTreeMap;

use vulnstack_isa::Isa;
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::{CoreModel, FaultModel};
use vulnstack_workloads::WorkloadId;

use crate::json::{self, Value};

/// Which campaign engine runs the spec. The five streamed engines the
/// platform exposes, uniformly dispatched via [`crate::service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// GeFIN microarchitectural AVF/HVF campaign.
    Avf,
    /// GeFIN architectural PVF campaign.
    Pvf,
    /// GeFIN temporal AVF-over-time sweep.
    Sweep,
    /// LLFI-style software (IR-level) campaign.
    Svf,
    /// The SVF campaign over instruction-duplication-hardened IR.
    SvfHardened,
}

impl Engine {
    pub const ALL: [Engine; 5] = [
        Engine::Avf,
        Engine::Pvf,
        Engine::Sweep,
        Engine::Svf,
        Engine::SvfHardened,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Engine::Avf => "avf",
            Engine::Pvf => "pvf",
            Engine::Sweep => "sweep",
            Engine::Svf => "svf",
            Engine::SvfHardened => "svf-hardened",
        }
    }

    pub fn from_name(s: &str) -> Option<Engine> {
        Engine::ALL.into_iter().find(|e| e.name() == s)
    }
}

/// Tenant priority → stride-scheduler weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    Low,
    Normal,
    High,
}

impl Priority {
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Fair-share weight: a high-priority campaign gets 4× the slot
    /// grants of a low-priority one under contention.
    pub fn weight(self) -> u32 {
        match self {
            Priority::Low => 1,
            Priority::Normal => 2,
            Priority::High => 4,
        }
    }
}

/// A validated, normalized campaign submission.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    pub engine: Engine,
    pub workload: WorkloadId,
    /// Run the fault-tolerance-hardened variant of the workload
    /// (ignored by `svf-hardened`, which hardens internally).
    pub hardened: bool,
    pub priority: Priority,
    pub faults: usize,
    pub seed: u64,
    /// Core model (avf/sweep engines).
    pub model: CoreModel,
    /// Target structure (avf/sweep engines).
    pub structure: HwStructure,
    /// Fault models (avf engine).
    pub models: Vec<FaultModel>,
    /// ISA (pvf engine).
    pub isa: Isa,
    /// PVF population: wd / woi / wi (pvf engine).
    pub mode: &'static str,
    /// Temporal windows (sweep engine).
    pub windows: usize,
    /// Injections per window (sweep engine).
    pub per_window: usize,
}

impl CampaignSpec {
    /// The workload label used for journal fingerprints and reports —
    /// identical to the CLI's (`name` or `name+ft`).
    pub fn label(&self) -> String {
        if self.hardened || self.engine == Engine::SvfHardened {
            format!("{}+ft", self.workload.name())
        } else {
            self.workload.name().to_string()
        }
    }

    /// Canonical JSON form: every field explicit, keys sorted. Two specs
    /// are the same campaign iff their canonical forms are bytewise
    /// equal.
    pub fn canonical(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("engine".into(), json::s(self.engine.name()));
        m.insert("workload".into(), json::s(self.workload.name()));
        m.insert("hardened".into(), Value::Bool(self.hardened));
        m.insert("priority".into(), json::s(self.priority.name()));
        m.insert("faults".into(), json::n(self.faults as u64));
        m.insert("seed".into(), json::n(self.seed));
        m.insert("model".into(), json::s(self.model.name()));
        m.insert("structure".into(), json::s(self.structure.name()));
        m.insert(
            "models".into(),
            Value::Arr(self.models.iter().map(|f| json::s(f.name())).collect()),
        );
        m.insert(
            "isa".into(),
            json::s(match self.isa {
                Isa::Va32 => "va32",
                Isa::Va64 => "va64",
            }),
        );
        m.insert("mode".into(), json::s(self.mode));
        m.insert("windows".into(), json::n(self.windows as u64));
        m.insert("per_window".into(), json::n(self.per_window as u64));
        Value::Obj(m)
    }

    /// The campaign handle: 16 hex digits of FNV-1a over the canonical
    /// spec. Deterministic across daemon restarts, so a restarted daemon
    /// re-attaches resubmitted specs to their journals.
    pub fn handle(&self) -> String {
        let text = json::write(&self.canonical());
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Parses and validates a submitted spec object. Error strings are
    /// returned to the client under the `bad-params` code.
    pub fn parse(v: &Value) -> Result<CampaignSpec, String> {
        let Value::Obj(_) = v else {
            return Err("spec must be a JSON object".to_string());
        };
        let engine_name = v
            .get("engine")
            .and_then(Value::as_str)
            .ok_or("spec needs a string \"engine\"")?;
        let engine = Engine::from_name(engine_name).ok_or_else(|| {
            format!("unknown engine {engine_name} (expected avf|pvf|sweep|svf|svf-hardened)")
        })?;
        let wname = v
            .get("workload")
            .and_then(Value::as_str)
            .ok_or("spec needs a string \"workload\"")?;
        let workload =
            WorkloadId::from_name(wname).ok_or_else(|| format!("unknown workload {wname}"))?;
        let hardened = match v.get("hardened") {
            None => false,
            Some(b) => b.as_bool().ok_or("\"hardened\" must be a boolean")?,
        };
        let priority = match v.get("priority").map(|p| p.as_str()) {
            None => Priority::Normal,
            Some(Some("low")) => Priority::Low,
            Some(Some("normal")) => Priority::Normal,
            Some(Some("high")) => Priority::High,
            Some(p) => return Err(format!("unknown priority {p:?} (expected low|normal|high)")),
        };
        let faults = match v.get("faults") {
            None => 150,
            Some(f) => {
                f.as_u64()
                    .filter(|&f| (1..=1_000_000).contains(&f))
                    .ok_or("\"faults\" must be an integer in 1..=1000000")? as usize
            }
        };
        let seed = match v.get("seed") {
            None => 2021,
            Some(s) => s
                .as_u64()
                .ok_or("\"seed\" must be a non-negative integer")?,
        };
        let model = match v.get("model") {
            None => CoreModel::A72,
            Some(m) => {
                let name = m.as_str().ok_or("\"model\" must be a string")?;
                CoreModel::ALL
                    .into_iter()
                    .find(|c| c.name().eq_ignore_ascii_case(name))
                    .ok_or_else(|| format!("unknown model {name}"))?
            }
        };
        let structure = match v.get("structure") {
            None => HwStructure::RegisterFile,
            Some(s) => {
                let name = s.as_str().ok_or("\"structure\" must be a string")?;
                HwStructure::ALL
                    .into_iter()
                    .find(|x| x.name().eq_ignore_ascii_case(name))
                    .ok_or_else(|| format!("unknown structure {name}"))?
            }
        };
        let parse_model = |n: &str| {
            FaultModel::from_name(n.trim()).ok_or_else(|| format!("unknown fault model {n}"))
        };
        let models =
            match v.get("models") {
                None => vec![FaultModel::BitFlip],
                Some(Value::Str(list)) if list == "all" => FaultModel::ALL.to_vec(),
                Some(Value::Str(list)) => list
                    .split(',')
                    .map(parse_model)
                    .collect::<Result<Vec<_>, _>>()?,
                // The canonical (persisted) form is an array of names.
                Some(Value::Arr(items)) => items
                    .iter()
                    .map(|m| {
                        m.as_str()
                            .ok_or("\"models\" entries must be strings".to_string())
                            .and_then(parse_model)
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                Some(_) => return Err(
                    "\"models\" must be a comma-separated string, an array of names, or \"all\""
                        .into(),
                ),
            };
        let isa = match v.get("isa").map(|i| i.as_str()) {
            None => Isa::Va64,
            Some(Some("va32")) => Isa::Va32,
            Some(Some("va64")) => Isa::Va64,
            Some(i) => return Err(format!("unknown isa {i:?} (expected va32|va64)")),
        };
        let mode = match v.get("mode").map(|m| m.as_str()) {
            None => "wd",
            Some(Some("wd")) => "wd",
            Some(Some("woi")) => "woi",
            Some(Some("wi")) => "wi",
            Some(m) => return Err(format!("unknown mode {m:?} (expected wd|woi|wi)")),
        };
        let windows = match v.get("windows") {
            None => 8,
            Some(w) => {
                w.as_u64()
                    .filter(|&w| (1..=1024).contains(&w))
                    .ok_or("\"windows\" must be an integer in 1..=1024")? as usize
            }
        };
        let per_window = match v.get("per_window") {
            None => 8,
            Some(w) => w
                .as_u64()
                .filter(|&w| (1..=10_000).contains(&w))
                .ok_or("\"per_window\" must be an integer in 1..=10000")?
                as usize,
        };
        // Cross-field checks mirroring the CLI: the microarchitectural
        // engines need a core model whose ISA can run the workload; that
        // is validated at prepare time, but the va32/va64 split for pvf
        // is caught here.
        Ok(CampaignSpec {
            engine,
            workload,
            hardened,
            priority,
            faults,
            seed,
            model,
            structure,
            models,
            isa,
            mode,
            windows,
            per_window,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_spec(text: &str) -> Result<CampaignSpec, String> {
        CampaignSpec::parse(&json::parse(text).unwrap())
    }

    #[test]
    fn minimal_spec_fills_defaults() {
        let s = parse_spec(r#"{"engine":"avf","workload":"qsort"}"#).unwrap();
        assert_eq!(s.engine, Engine::Avf);
        assert_eq!(s.faults, 150);
        assert_eq!(s.seed, 2021);
        assert_eq!(s.priority, Priority::Normal);
        assert_eq!(s.structure, HwStructure::RegisterFile);
        assert_eq!(s.models, vec![FaultModel::BitFlip]);
    }

    #[test]
    fn handle_is_stable_and_insensitive_to_field_order() {
        let a = parse_spec(r#"{"engine":"svf","workload":"sha","faults":40}"#).unwrap();
        let b = parse_spec(r#"{"faults":40,"workload":"sha","engine":"svf"}"#).unwrap();
        assert_eq!(a.handle(), b.handle());
        // Explicit defaults hash identically to omitted ones.
        let c = parse_spec(r#"{"engine":"svf","workload":"sha","faults":40,"seed":2021}"#).unwrap();
        assert_eq!(a.handle(), c.handle());
        // A different campaign gets a different handle.
        let d = parse_spec(r#"{"engine":"svf","workload":"sha","faults":41}"#).unwrap();
        assert_ne!(a.handle(), d.handle());
    }

    #[test]
    fn rejects_bad_fields_with_named_errors() {
        for (spec, needle) in [
            (r#"{"workload":"qsort"}"#, "engine"),
            (r#"{"engine":"warp","workload":"qsort"}"#, "unknown engine"),
            (r#"{"engine":"avf","workload":"nope"}"#, "unknown workload"),
            (
                r#"{"engine":"avf","workload":"qsort","faults":0}"#,
                "faults",
            ),
            (
                r#"{"engine":"avf","workload":"qsort","priority":"max"}"#,
                "priority",
            ),
            (
                r#"{"engine":"avf","workload":"qsort","structure":"TLB"}"#,
                "structure",
            ),
            (r#"{"engine":"pvf","workload":"qsort","mode":"xx"}"#, "mode"),
            (
                r#"{"engine":"avf","workload":"qsort","models":"laser"}"#,
                "fault model",
            ),
        ] {
            let e = parse_spec(spec).unwrap_err();
            assert!(e.contains(needle), "{spec}: {e}");
        }
    }

    #[test]
    fn label_matches_cli_convention() {
        let s = parse_spec(r#"{"engine":"svf","workload":"sha","hardened":true}"#).unwrap();
        assert_eq!(s.label(), "sha+ft");
        let h = parse_spec(r#"{"engine":"svf-hardened","workload":"sha"}"#).unwrap();
        assert_eq!(h.label(), "sha+ft");
        let p = parse_spec(r#"{"engine":"avf","workload":"sha"}"#).unwrap();
        assert_eq!(p.label(), "sha");
    }
}
