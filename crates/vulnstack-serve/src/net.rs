//! A socket that is either TCP or Unix-domain, behind one type.
//!
//! The protocol code reads and writes `Conn` without caring which
//! transport carries it; `try_clone` yields the independent write half
//! the per-connection writer thread owns.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

#[derive(Debug)]
pub enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    /// Connects to `addr`: a filesystem path prefixed with `unix:`, or
    /// a `host:port` TCP endpoint.
    pub fn connect(addr: &str) -> std::io::Result<Conn> {
        if let Some(path) = addr.strip_prefix("unix:") {
            UnixStream::connect(path).map(Conn::Unix)
        } else {
            TcpStream::connect(addr).map(Conn::Tcp)
        }
    }

    pub fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}
