//! Command-line front ends for the daemon (`vulnstack serve`) and the
//! client (`vulnstack client`). The binary crate forwards its raw
//! argument slices here so all serving-related parsing lives with the
//! protocol it drives.

use std::collections::HashMap;
use std::path::PathBuf;

use crate::client::Client;
use crate::daemon::{self, DaemonOpts};
use crate::json::{self, Value};
use crate::spec::CampaignSpec;

fn parse_flags(rest: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a}"));
        };
        if matches!(name, "hardened") {
            flags.insert(name.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let v = rest
            .get(i + 1)
            .ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), v.clone());
        i += 2;
    }
    Ok(flags)
}

fn parse_num(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad --{key} {v}")),
    }
}

/// `vulnstack serve --state DIR [--listen ADDR] [--slots N] [--threads N]`
///
/// `--listen` takes `host:port` (port 0 picks a free port; the resolved
/// endpoint is printed and written to `<state>/endpoint`) or
/// `unix:/path/to.sock`.
pub fn serve_main(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let state = flags
        .get("state")
        .ok_or("serve needs --state DIR (spec/journal directory)")?;
    let opts = DaemonOpts {
        listen: flags
            .get("listen")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        state: PathBuf::from(state),
        slots: parse_num(&flags, "slots", 2)?.max(1) as usize,
        threads: parse_num(&flags, "threads", 2)?.max(1) as usize,
    };
    daemon::serve(&opts)
}

/// Builds a spec object from client flags; `workload` is positional.
fn spec_from_flags(workload: &str, flags: &HashMap<String, String>) -> Result<Value, String> {
    let mut fields: Vec<(&str, Value)> = vec![("workload", json::s(workload))];
    fields.push((
        "engine",
        json::s(flags.get("engine").map_or("avf", String::as_str)),
    ));
    for key in ["model", "structure", "models", "isa", "mode", "priority"] {
        if let Some(v) = flags.get(key) {
            fields.push((key_static(key), json::s(v)));
        }
    }
    for key in ["faults", "seed", "windows", "per_window"] {
        if let Some(v) = flags.get(key) {
            let n: u64 = v.parse().map_err(|_| format!("bad --{key} {v}"))?;
            fields.push((key_static(key), json::n(n)));
        }
    }
    if flags.contains_key("hardened") {
        fields.push(("hardened", Value::Bool(true)));
    }
    let spec = json::obj(fields);
    // Validate locally so a typo fails before touching the daemon.
    CampaignSpec::parse(&spec)?;
    Ok(spec)
}

/// Maps a known flag name to its `'static` spec key (the JSON builder
/// borrows keys for the duration of the call).
fn key_static(key: &str) -> &'static str {
    match key {
        "model" => "model",
        "structure" => "structure",
        "models" => "models",
        "isa" => "isa",
        "mode" => "mode",
        "priority" => "priority",
        "faults" => "faults",
        "seed" => "seed",
        "windows" => "windows",
        "per_window" => "per_window",
        _ => unreachable!("key_static called with unknown key"),
    }
}

/// `vulnstack client <addr> <action> ...`
///
/// Actions:
/// * `run <workload> [--engine avf] [spec flags] [--json PATH]` —
///   submit, subscribe, stream records to stdout, write the final
///   report verbatim to `--json` (or stdout).
/// * `list` — table of campaigns.
/// * `status|cancel --handle H` — one campaign.
/// * `shutdown` — graceful daemon stop.
pub fn client_main(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("client needs a daemon address")?;
    let action = args.get(1).map_or("list", String::as_str);
    match action {
        "run" => {
            let workload = args
                .get(2)
                .filter(|w| !w.starts_with("--"))
                .ok_or("client run needs a workload name")?;
            let flags = parse_flags(args.get(3..).unwrap_or(&[]))?;
            let spec = spec_from_flags(workload, &flags)?;
            let mut client = Client::connect(addr)?;
            let mut streamed = 0u64;
            let done = client.run_campaign(&spec, |_r| streamed += 1)?;
            eprintln!("{streamed} record(s) streamed; campaign {}", done.state);
            if done.state == "failed" {
                return Err(format!("campaign failed: {}", done.message));
            }
            match flags.get("json") {
                // The report is written verbatim: byte-identical to the
                // CLI's `--json` output for the same campaign.
                Some(path) => std::fs::write(path, done.report.as_bytes())
                    .map_err(|e| format!("write {path}: {e}"))?,
                None => print!("{}", done.report),
            }
            Ok(())
        }
        "list" => {
            let mut client = Client::connect(addr)?;
            let resp = client.call("list", vec![])?;
            let Some(Value::Arr(items)) = resp.get("campaigns") else {
                return Err("malformed list response".to_string());
            };
            for item in items {
                let get = |k: &str| item.get(k).and_then(Value::as_str).unwrap_or("?");
                let records = item.get("records").and_then(Value::as_u64).unwrap_or(0);
                println!(
                    "{}  {:<12} {:<10} {:<8} {:<9} {} record(s)",
                    get("handle"),
                    get("engine"),
                    get("workload"),
                    get("priority"),
                    get("state"),
                    records
                );
            }
            Ok(())
        }
        "status" | "cancel" => {
            let flags = parse_flags(args.get(2..).unwrap_or(&[]))?;
            let handle = flags
                .get("handle")
                .ok_or_else(|| format!("client {action} needs --handle H"))?;
            let mut client = Client::connect(addr)?;
            let resp = client.call(action, vec![("handle", json::s(handle))])?;
            println!("{}", json::write(&resp));
            Ok(())
        }
        "shutdown" => {
            let mut client = Client::connect(addr)?;
            client.call("shutdown", vec![])?;
            Ok(())
        }
        other => Err(format!(
            "unknown client action {other} (expected run|list|status|cancel|shutdown)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[&str]) -> HashMap<String, String> {
        parse_flags(&pairs.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn spec_from_flags_builds_a_valid_spec() {
        let f = flags(&[
            "--engine",
            "avf",
            "--model",
            "A9",
            "--structure",
            "RF",
            "--faults",
            "25",
            "--seed",
            "7",
            "--priority",
            "high",
        ]);
        let spec = spec_from_flags("qsort", &f).unwrap();
        let parsed = CampaignSpec::parse(&spec).unwrap();
        assert_eq!(parsed.faults, 25);
        assert_eq!(parsed.priority.name(), "high");
    }

    #[test]
    fn bad_flags_fail_before_the_network() {
        assert!(spec_from_flags("qsort", &flags(&["--faults", "zero"])).is_err());
        assert!(spec_from_flags("noexist", &flags(&[])).is_err());
        assert!(parse_flags(&["stray".to_string()]).is_err());
    }
}
