//! Minimal JSON reader/writer for the wire protocol.
//!
//! The workspace's `serde` shim is derive-only (no runtime), so the
//! daemon carries its own small JSON layer. It is deliberately strict:
//! depth-limited (a hostile client cannot stack-overflow the parser),
//! rejects trailing garbage, and only supports the value shapes the
//! protocol actually uses. Numbers are kept as `f64`; every integer
//! field the protocol carries fits without rounding (all are far below
//! 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth a parsed document may have. Protocol messages
/// are at most 3 deep; 32 leaves headroom without risking the stack.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value. Object keys are sorted (`BTreeMap`), which also
/// makes [`write`] canonical: the same value always serializes to the
/// same bytes — the property campaign IDs rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Field lookup on an object; `None` for other shapes.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, `None` if it is not a
    /// number, is negative, or has a fractional part.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Convenience constructors for building protocol messages.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

pub fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

pub fn n(v: u64) -> Value {
    Value::Num(v as f64)
}

/// Parse error with a byte offset — surfaced to clients verbatim so a
/// malformed submission is debuggable from the other end of the socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error (one request per line means one document per line).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Value::Null),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // consume '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // the protocol never emits them.
                            let c =
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged;
                    // the input is already a valid &str.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text.parse().map_err(|_| ParseError {
            offset: start,
            message: "bad number",
        })?;
        if !n.is_finite() {
            return Err(ParseError {
                offset: start,
                message: "bad number",
            });
        }
        Ok(Value::Num(n))
    }
}

/// Serializes a value to canonical JSON: object keys sorted, integers
/// written without a fractional part, no whitespace.
pub fn write(v: &Value) -> String {
    let mut out = String::new();
    write_into(v, &mut out);
    out
}

fn write_into(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Value::Str(s) => write_str(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(item, out);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write_into(val, out);
            }
            out.push('}');
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        let v = obj(vec![
            ("verb", s("submit")),
            ("id", n(7)),
            (
                "spec",
                obj(vec![("workload", s("qsort")), ("faults", n(40))]),
            ),
            (
                "tags",
                Value::Arr(vec![s("a"), Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = write(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn canonical_write_sorts_keys() {
        let a = parse(r#"{"b":1,"a":2}"#).unwrap();
        let b = parse(r#"{"a":2,"b":1}"#).unwrap();
        assert_eq!(write(&a), write(&b));
        assert_eq!(write(&a), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn rejects_trailing_garbage_and_deep_nesting() {
        assert!(parse("{} {}").is_err());
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let e = parse(&deep).unwrap_err();
        assert_eq!(e.message, "nesting too deep");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"k\":}",
            "nul",
            "+5",
            "1e999",
            "{\"k\" 1}",
            "[1 2]",
            "\"\\q\"",
            "\"\\u12g4\"",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}f→g".to_string());
        assert_eq!(parse(&write(&v)).unwrap(), v);
    }

    #[test]
    fn numbers_accept_integers_reject_weird() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
    }
}
