//! The campaign daemon: accept loop, session state, verb dispatch.
//!
//! One daemon multiplexes many campaigns over one shared
//! [`FairPool`](vulnstack_core::FairPool): every campaign keeps its own
//! engine worker threads, but each injection site must be admitted
//! through the campaign's pool [`Participant`] — a stride scheduler
//! that rations slots by tenant priority, so a low-priority bulk sweep
//! cannot starve a high-priority incident campaign.
//!
//! ## Durability
//!
//! Every submitted spec is persisted to `<state>/<handle>.spec.json`
//! before the campaign starts, and every campaign journals to
//! `<state>/<handle>.journal`. A restarted daemon rescans the state
//! directory and resubmits every spec with `ResumeOrStart`: completed
//! prefixes replay from the journal (through the same fold → tee path,
//! so late subscribers still observe the full stream) and only the
//! missing tail executes. The stream a subscriber sees is therefore
//! bit-identical whether or not the daemon was killed mid-campaign.

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};

use vulnstack_core::sched::ClaimGate;
use vulnstack_core::{FairPool, Participant};

use crate::json::{self, obj, s, Value};
use crate::net::Conn;
use crate::proto::{self, ErrorCode, Frame, Request};
use crate::service::{engine_for, RunCtx, RunOutput};
use crate::spec::CampaignSpec;

/// Daemon configuration (from `vulnstack serve ...`).
#[derive(Debug, Clone)]
pub struct DaemonOpts {
    /// `host:port` TCP endpoint, or a filesystem path prefixed with
    /// `unix:` for a Unix-domain socket.
    pub listen: String,
    /// State directory: spec files, journals, endpoint file.
    pub state: PathBuf,
    /// Shared-pool slot count (concurrently executing injection sites
    /// across ALL campaigns).
    pub slots: usize,
    /// Engine worker threads per campaign.
    pub threads: usize,
}

/// Where a campaign is in its lifecycle.
#[derive(Debug, Clone)]
enum Phase {
    Running,
    Done(RunOutput),
    Cancelled(RunOutput),
    Failed(String),
}

impl Phase {
    fn name(&self) -> &'static str {
        match self {
            Phase::Running => "running",
            Phase::Done(_) => "done",
            Phase::Cancelled(_) => "cancelled",
            Phase::Failed(_) => "failed",
        }
    }
}

/// Subscriber-visible stream state. One mutex guards the record buffer
/// AND the subscriber list AND the phase: a subscriber replays the
/// buffer and attaches under the same lock, so no record can slip into
/// the gap (the bit-identity guarantee in `tests/serve_protocol.rs`
/// depends on this).
struct StreamState {
    records: Vec<(u64, String)>,
    subs: Vec<Sender<String>>,
    phase: Phase,
}

struct Campaign {
    handle: String,
    spec: CampaignSpec,
    part: Participant,
    stream: Mutex<StreamState>,
    done_cv: Condvar,
}

impl Campaign {
    /// Pushes one event line to every live subscriber, pruning the dead.
    fn broadcast(st: &mut StreamState, line: &str) {
        st.subs.retain(|tx| tx.send(line.to_string()).is_ok());
    }

    fn record_event(handle: &str, index: u64, payload: &str) -> String {
        proto::event(
            "record",
            vec![
                ("handle", s(handle)),
                ("index", json::n(index)),
                ("payload", s(payload)),
            ],
        )
    }

    fn done_event(handle: &str, phase: &Phase) -> String {
        let mut fields = vec![("handle", s(handle)), ("state", s(phase.name()))];
        match phase {
            Phase::Done(out) | Phase::Cancelled(out) => {
                fields.push(("report", s(&out.report)));
                fields.push(("replayed", json::n(out.stats.replayed as u64)));
                fields.push(("executed", json::n(out.stats.executed as u64)));
                fields.push(("quarantined", json::n(out.quarantined as u64)));
            }
            Phase::Failed(msg) => fields.push(("message", s(msg))),
            Phase::Running => {}
        }
        proto::event("done", vec![("result", obj(fields))])
    }
}

struct Daemon {
    state_dir: PathBuf,
    pool: FairPool,
    threads: usize,
    campaigns: Mutex<BTreeMap<String, Arc<Campaign>>>,
}

impl Daemon {
    fn spec_path(&self, handle: &str) -> PathBuf {
        self.state_dir.join(format!("{handle}.spec.json"))
    }

    fn journal_path(&self, handle: &str) -> PathBuf {
        self.state_dir.join(format!("{handle}.journal"))
    }

    /// Registers and launches a campaign; idempotent on the handle. A
    /// resubmitted spec whose campaign already finished relaunches it —
    /// the journal replays the whole run, so the relaunch is cheap and
    /// re-serves the stream to new subscribers.
    fn submit(
        self: &Arc<Self>,
        spec: CampaignSpec,
        persist: bool,
    ) -> Result<Arc<Campaign>, String> {
        let handle = spec.handle();
        let mut reg = self.campaigns.lock().unwrap();
        if let Some(c) = reg.get(&handle) {
            return Ok(c.clone());
        }
        if persist {
            let text = json::write(&spec.canonical()) + "\n";
            let path = self.spec_path(&handle);
            std::fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        let part = self.pool.register(spec.priority.weight());
        let campaign = Arc::new(Campaign {
            handle: handle.clone(),
            spec,
            part,
            stream: Mutex::new(StreamState {
                records: Vec::new(),
                subs: Vec::new(),
                phase: Phase::Running,
            }),
            done_cv: Condvar::new(),
        });
        reg.insert(handle, campaign.clone());
        drop(reg);

        let daemon = self.clone();
        let c = campaign.clone();
        std::thread::Builder::new()
            .name(format!("campaign-{}", c.handle))
            .spawn(move || daemon.run_campaign(&c))
            .map_err(|e| format!("spawn campaign thread: {e}"))?;
        Ok(campaign)
    }

    /// The campaign worker: runs the engine with the pool gate and a tee
    /// that fans records out to the in-memory buffer and subscribers.
    fn run_campaign(&self, c: &Arc<Campaign>) {
        let journal = self.journal_path(&c.handle);
        let tee = |index: u64, payload: &str| {
            let mut st = c.stream.lock().unwrap();
            let line = Campaign::record_event(&c.handle, index, payload);
            st.records.push((index, payload.to_string()));
            Campaign::broadcast(&mut st, &line);
        };
        let ctx = RunCtx {
            journal: &journal,
            threads: self.threads,
            gate: Some(&c.part as &dyn ClaimGate),
            tee: Some(&tee),
        };
        let result = engine_for(c.spec.engine).run(&c.spec, &ctx);
        c.part.retire();
        let phase = match result {
            Ok(out) if out.stopped => Phase::Cancelled(out),
            Ok(out) => Phase::Done(out),
            Err(e) => Phase::Failed(e),
        };
        let mut st = c.stream.lock().unwrap();
        let line = Campaign::done_event(&c.handle, &phase);
        st.phase = phase;
        Campaign::broadcast(&mut st, &line);
        st.subs.clear();
        drop(st);
        c.done_cv.notify_all();
    }

    /// Rescans the state directory and resubmits every persisted spec —
    /// the restart half of crash recovery.
    fn reattach(self: &Arc<Self>) -> Result<usize, String> {
        let mut n = 0;
        let entries = std::fs::read_dir(&self.state_dir)
            .map_err(|e| format!("read state dir {}: {e}", self.state_dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read state dir entry: {e}"))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(_handle) = name.strip_suffix(".spec.json") else {
                continue;
            };
            let text = std::fs::read_to_string(entry.path())
                .map_err(|e| format!("read {}: {e}", entry.path().display()))?;
            let doc = json::parse(text.trim())
                .map_err(|e| format!("parse {}: {e}", entry.path().display()))?;
            let spec = CampaignSpec::parse(&doc)
                .map_err(|e| format!("invalid spec {}: {e}", entry.path().display()))?;
            self.submit(spec, false)?;
            n += 1;
        }
        Ok(n)
    }
}

/// Sentinel consumed by the connection writer thread: flush everything
/// queued before it, then exit the process (graceful `shutdown` verb).
const EXIT_SENTINEL: &str = "\u{0}__vulnstack_serve_exit__";

/// Runs the daemon: bind, re-attach persisted campaigns, accept forever.
/// Returns only on a bind/setup error; `shutdown` exits the process.
pub fn serve(opts: &DaemonOpts) -> Result<(), String> {
    std::fs::create_dir_all(&opts.state)
        .map_err(|e| format!("create state dir {}: {e}", opts.state.display()))?;
    let daemon = Arc::new(Daemon {
        state_dir: opts.state.clone(),
        pool: FairPool::new(opts.slots),
        threads: opts.threads.max(1),
        campaigns: Mutex::new(BTreeMap::new()),
    });
    let reattached = daemon.reattach()?;
    if reattached > 0 {
        eprintln!("re-attached {reattached} persisted campaign(s)");
    }

    enum Listener {
        Tcp(TcpListener),
        Unix(UnixListener),
    }

    let (listener, addr) = if let Some(path) = opts.listen.strip_prefix("unix:") {
        // A stale socket file from a killed daemon would fail the bind;
        // remove it first (the state dir, not the socket, is durable).
        let _ = std::fs::remove_file(path);
        let l = UnixListener::bind(path).map_err(|e| format!("bind unix socket {path}: {e}"))?;
        (Listener::Unix(l), format!("unix:{path}"))
    } else {
        let l =
            TcpListener::bind(&opts.listen).map_err(|e| format!("bind {}: {e}", opts.listen))?;
        let local = l
            .local_addr()
            .map_err(|e| format!("local_addr on {}: {e}", opts.listen))?;
        (Listener::Tcp(l), local.to_string())
    };

    // The endpoint file lets scripts find a port-0 daemon; written
    // atomically-enough (tiny) and removed never — it names the current
    // endpoint for the lifetime of the state dir.
    let endpoint = opts.state.join("endpoint");
    std::fs::write(&endpoint, format!("{addr}\n"))
        .map_err(|e| format!("write {}: {e}", endpoint.display()))?;
    println!("listening on {addr}");

    loop {
        let conn = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        };
        match conn {
            Ok(conn) => {
                let d = daemon.clone();
                let _ = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || handle_connection(&d, conn));
            }
            Err(e) => eprintln!("accept: {e}"),
        }
    }
}

/// One connection: a reader loop on this thread, a writer thread
/// draining an unbounded channel. Responses and subscription events
/// share the channel, so every line written to the socket is whole.
fn handle_connection(daemon: &Arc<Daemon>, conn: Conn) {
    let write_half = match conn.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("connection clone: {e}");
            return;
        }
    };
    let (tx, rx) = mpsc::channel::<String>();
    let writer = std::thread::Builder::new()
        .name("serve-writer".to_string())
        .spawn(move || {
            let mut w = write_half;
            for line in rx {
                if line == EXIT_SENTINEL {
                    let _ = w.flush();
                    std::process::exit(0);
                }
                if w.write_all(line.as_bytes()).is_err() {
                    return;
                }
            }
            let _ = w.flush();
        });

    let mut reader = BufReader::new(conn);
    loop {
        match proto::read_frame(&mut reader) {
            Err(e) => {
                eprintln!("connection read: {e}");
                break;
            }
            Ok(Frame::Eof) => break,
            Ok(Frame::Bad { id, code, message }) => {
                if tx.send(proto::err_response(id, code, &message)).is_err() {
                    break;
                }
            }
            Ok(Frame::Request(req)) => {
                if !dispatch(daemon, &req, &tx) {
                    break;
                }
            }
        }
    }
    drop(tx);
    if let Ok(h) = writer {
        let _ = h.join();
    }
}

/// Handles one request; returns false when the connection should close.
fn dispatch(daemon: &Arc<Daemon>, req: &Request, tx: &Sender<String>) -> bool {
    let send = |line: String| tx.send(line).is_ok();
    match req.verb.as_str() {
        "ping" => send(proto::ok_response(req.id, vec![])),
        "submit" => {
            let Some(spec_doc) = req.body.get("spec") else {
                return send(proto::err_response(
                    Some(req.id),
                    ErrorCode::BadParams,
                    "submit needs a \"spec\" object",
                ));
            };
            match CampaignSpec::parse(spec_doc) {
                Err(e) => send(proto::err_response(Some(req.id), ErrorCode::BadParams, &e)),
                Ok(spec) => match daemon.submit(spec, true) {
                    Err(e) => send(proto::err_response(Some(req.id), ErrorCode::Internal, &e)),
                    Ok(c) => {
                        let state = c.stream.lock().unwrap().phase.name();
                        send(proto::ok_response(
                            req.id,
                            vec![("handle", s(&c.handle)), ("state", s(state))],
                        ))
                    }
                },
            }
        }
        "status" => with_campaign(daemon, req, tx, |c| {
            let st = c.stream.lock().unwrap();
            let mut fields = vec![
                ("handle", s(&c.handle)),
                ("engine", s(c.spec.engine.name())),
                ("workload", s(c.spec.workload.name())),
                ("priority", s(c.spec.priority.name())),
                ("state", s(st.phase.name())),
                ("records", json::n(st.records.len() as u64)),
                ("grants", json::n(c.part.grants())),
            ];
            match &st.phase {
                Phase::Done(out) | Phase::Cancelled(out) => {
                    fields.push(("report", s(&out.report)));
                }
                Phase::Failed(msg) => fields.push(("message", s(msg))),
                Phase::Running => {}
            }
            proto::ok_response(req.id, fields)
        }),
        "subscribe" => {
            let Some(c) = campaign_of(daemon, req) else {
                return send(unknown_handle(req));
            };
            // Replay + attach under one lock: nothing can be appended
            // between the last replayed record and the live attachment.
            let mut st = c.stream.lock().unwrap();
            let mut ok = send(proto::ok_response(
                req.id,
                vec![
                    ("handle", s(&c.handle)),
                    ("replayed", json::n(st.records.len() as u64)),
                ],
            ));
            for (index, payload) in &st.records {
                ok = ok && send(Campaign::record_event(&c.handle, *index, payload));
            }
            if matches!(st.phase, Phase::Running) {
                st.subs.push(tx.clone());
            } else {
                ok = ok && send(Campaign::done_event(&c.handle, &st.phase));
            }
            ok
        }
        "cancel" => with_campaign(daemon, req, tx, |c| {
            c.part.cancel();
            proto::ok_response(req.id, vec![("handle", s(&c.handle))])
        }),
        "list" => {
            let reg = daemon.campaigns.lock().unwrap();
            let items: Vec<Value> = reg
                .values()
                .map(|c| {
                    let st = c.stream.lock().unwrap();
                    obj(vec![
                        ("handle", s(&c.handle)),
                        ("engine", s(c.spec.engine.name())),
                        ("workload", s(c.spec.workload.name())),
                        ("priority", s(c.spec.priority.name())),
                        ("state", s(st.phase.name())),
                        ("records", json::n(st.records.len() as u64)),
                    ])
                })
                .collect();
            send(proto::ok_response(
                req.id,
                vec![("campaigns", Value::Arr(items))],
            ))
        }
        "shutdown" => {
            daemon.pool.shutdown();
            let _ = tx.send(proto::ok_response(req.id, vec![]));
            let _ = tx.send(EXIT_SENTINEL.to_string());
            false
        }
        other => send(proto::err_response(
            Some(req.id),
            ErrorCode::UnknownVerb,
            &format!("unknown verb {other}"),
        )),
    }
}

fn campaign_of(daemon: &Arc<Daemon>, req: &Request) -> Option<Arc<Campaign>> {
    let handle = req.body.get("handle")?.as_str()?;
    daemon.campaigns.lock().unwrap().get(handle).cloned()
}

fn unknown_handle(req: &Request) -> String {
    proto::err_response(
        Some(req.id),
        ErrorCode::UnknownHandle,
        "no such campaign handle",
    )
}

fn with_campaign(
    daemon: &Arc<Daemon>,
    req: &Request,
    tx: &Sender<String>,
    f: impl FnOnce(&Arc<Campaign>) -> String,
) -> bool {
    let line = match campaign_of(daemon, req) {
        Some(c) => f(&c),
        None => unknown_handle(req),
    };
    tx.send(line).is_ok()
}
