//! # vulnstack-serve
//!
//! A multi-tenant campaign daemon for the vulnerability stack. Clients
//! submit fault-injection campaigns over line-delimited JSON RPC (TCP
//! or Unix-domain sockets); the daemon multiplexes every campaign over
//! one shared worker pool with stride-scheduled fair sharing
//! ([`vulnstack_core::FairPool`]), streams per-injection records to
//! subscribers as they complete, and journals every campaign so a
//! killed daemon restarts, re-attaches, and resumes bit-identically.
//!
//! Layering, bottom up:
//!
//! * [`json`] — strict, depth-limited JSON reader/writer (the
//!   workspace's serde shim is derive-only, so the wire format is
//!   hand-rolled and canonical).
//! * [`proto`] — request/response/event framing with stable error
//!   codes; malformed input is answered, never panicked on.
//! * [`spec`] — campaign specifications and their content-addressed
//!   handles.
//! * [`service`] — the five campaign engines behind one uniformly
//!   dispatched trait.
//! * [`daemon`] / [`client`] / [`cli`] — the two ends of the socket and
//!   their command-line front ends.

pub mod cli;
pub mod client;
pub mod daemon;
pub mod json;
pub mod net;
pub mod proto;
pub mod service;
pub mod spec;

pub use cli::{client_main, serve_main};
pub use client::{Client, Completion, StreamedRecord};
pub use daemon::DaemonOpts;
pub use spec::{CampaignSpec, Engine, Priority};
