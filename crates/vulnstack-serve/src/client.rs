//! Client-side protocol driver: connect, submit, stream, collect.
//!
//! Used by `vulnstack client` and by the integration harness. The
//! high-level [`run_campaign`] call performs the canonical client
//! session — submit, subscribe, drain the stream, return the final
//! report — and is what CI's smoke test `cmp`s against `vulnstack avf
//! --json`.

use std::io::{BufReader, Write};

use crate::json::{self, Value};
use crate::net::Conn;
use crate::proto;

/// A connected RPC client with request-id bookkeeping.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
    next_id: u64,
}

/// A streamed record observed while waiting for completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamedRecord {
    pub index: u64,
    pub payload: String,
}

/// The terminal state of a campaign as reported by the `done` event or
/// a `status` poll.
#[derive(Debug, Clone)]
pub struct Completion {
    /// `done`, `cancelled`, or `failed`.
    pub state: String,
    /// The final report (empty for failures).
    pub report: String,
    /// Failure message, when `state == "failed"`.
    pub message: String,
    /// Injections replayed from the journal (crash/cancel recovery).
    pub replayed: u64,
    /// Injections executed fresh in this run.
    pub executed: u64,
}

impl Client {
    /// Connects to `addr` (`host:port` or `unix:/path`).
    pub fn connect(addr: &str) -> Result<Client, String> {
        let conn = Conn::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let writer = conn
            .try_clone()
            .map_err(|e| format!("clone connection to {addr}: {e}"))?;
        Ok(Client {
            reader: BufReader::new(conn),
            writer,
            next_id: 1,
        })
    }

    /// Sends one request line and returns its id.
    pub fn send(&mut self, verb: &str, mut fields: Vec<(&str, Value)>) -> Result<u64, String> {
        let id = self.next_id;
        self.next_id += 1;
        let mut all = vec![("id", json::n(id)), ("verb", json::s(verb))];
        all.append(&mut fields);
        let line = json::write(&json::obj(all)) + "\n";
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("send {verb}: {e}"))?;
        Ok(id)
    }

    /// Reads the next line from the daemon as a parsed JSON object.
    pub fn read_event(&mut self) -> Result<Value, String> {
        match proto::read_line(&mut self.reader).map_err(|e| format!("read: {e}"))? {
            None => Err("connection closed by daemon".to_string()),
            Some(Err(len)) => Err(format!("daemon sent an oversized {len}-byte line")),
            Some(Ok(line)) => json::parse(&line).map_err(|e| format!("daemon sent bad JSON: {e}")),
        }
    }

    /// Reads lines until the response with `id` arrives; pushed events
    /// seen on the way are handed to `on_event`. Error responses are
    /// surfaced as `code: message` strings.
    pub fn wait_response(
        &mut self,
        id: u64,
        mut on_event: impl FnMut(&Value),
    ) -> Result<Value, String> {
        loop {
            let doc = self.read_event()?;
            if doc.get("event").is_some() {
                on_event(&doc);
                continue;
            }
            if doc.get("id").and_then(Value::as_u64) == Some(id) {
                if doc.get("ok").and_then(Value::as_bool) == Some(true) {
                    return Ok(doc);
                }
                let code = doc
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Value::as_str)
                    .unwrap_or("unknown");
                let msg = doc
                    .get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(Value::as_str)
                    .unwrap_or("");
                return Err(format!("{code}: {msg}"));
            }
            // A response to some other request on this connection —
            // ignore (single-threaded clients never see this).
        }
    }

    /// One round-trip: send + wait, dropping stray events.
    pub fn call(&mut self, verb: &str, fields: Vec<(&str, Value)>) -> Result<Value, String> {
        let id = self.send(verb, fields)?;
        self.wait_response(id, |_| {})
    }

    /// The canonical session: submit `spec`, subscribe, stream every
    /// record through `on_record`, and return the completion. Works
    /// identically for fresh, resumed, and already-finished campaigns —
    /// the daemon replays the full record stream in every case.
    pub fn run_campaign(
        &mut self,
        spec: &Value,
        mut on_record: impl FnMut(&StreamedRecord),
    ) -> Result<Completion, String> {
        let resp = self.call("submit", vec![("spec", spec.clone())])?;
        let handle = resp
            .get("handle")
            .and_then(Value::as_str)
            .ok_or("submit response missing handle")?
            .to_string();
        let sub_id = self.send("subscribe", vec![("handle", json::s(&handle))])?;
        let mut pending: Vec<Value> = Vec::new();
        self.wait_response(sub_id, |ev| pending.push(ev.clone()))?;
        // Events may have arrived interleaved with the response; process
        // them, then keep draining until the done event.
        for ev in &pending {
            if let Some(c) = consume_event(ev, &mut on_record) {
                return Ok(c);
            }
        }
        loop {
            let doc = self.read_event()?;
            if let Some(c) = consume_event(&doc, &mut on_record) {
                return Ok(c);
            }
        }
    }
}

/// Classifies one pushed event: records go to `on_record`, a `done`
/// event yields the completion, anything else is ignored.
fn consume_event(doc: &Value, on_record: &mut impl FnMut(&StreamedRecord)) -> Option<Completion> {
    match doc.get("event").and_then(Value::as_str) {
        Some("record") => {
            if let (Some(index), Some(payload)) = (
                doc.get("index").and_then(Value::as_u64),
                doc.get("payload").and_then(Value::as_str),
            ) {
                on_record(&StreamedRecord {
                    index,
                    payload: payload.to_string(),
                });
            }
            None
        }
        Some("done") => {
            let result = doc.get("result");
            let get = |k: &str| {
                result
                    .and_then(|r| r.get(k))
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string()
            };
            let num = |k: &str| {
                result
                    .and_then(|r| r.get(k))
                    .and_then(Value::as_u64)
                    .unwrap_or(0)
            };
            Some(Completion {
                state: get("state"),
                report: get("report"),
                message: get("message"),
                replayed: num("replayed"),
                executed: num("executed"),
            })
        }
        _ => None,
    }
}
