//! Uniform campaign-engine dispatch.
//!
//! Each of the five streamed campaign entry points in the workspace is
//! wrapped in one object-safe [`CampaignEngine`] implementation, so the
//! daemon runs every campaign the same way: look the engine up by name,
//! hand it the spec plus a [`RunCtx`] carrying the journal path, the
//! fair-share admission gate and the record tee, and collect a
//! [`RunOutput`]. Nothing engine-specific leaks into the daemon loop.
//!
//! Every run is journal-backed (`ResumeOrStart`): a campaign interrupted
//! by cancellation or a daemon crash resumes bit-identically from its
//! journal on the next run of the same spec.

use std::path::Path;

use vulnstack_core::sched::ClaimGate;
use vulnstack_core::{JournalOpts, RecordTee, ResumeMode, ResumeStats, RunPolicy, StreamOpts};
use vulnstack_ft::svf_campaign_streamed_hardened;
use vulnstack_gefin::{
    avf_campaign_models_streamed, avf_report_json, pvf_campaign_streamed,
    temporal_campaign_streamed, FuncPrepared, InjectionPlan, Prepared, PvfMode,
};
use vulnstack_llfi::svf_campaign_streamed;
use vulnstack_workloads::Workload;

use crate::json::{self, obj, Value};
use crate::spec::{CampaignSpec, Engine};

/// Per-run context supplied by the daemon: where the journal lives, how
/// many worker threads the engine may spawn, and the shared-pool gate
/// and subscriber tee threaded through [`StreamOpts`].
pub struct RunCtx<'a> {
    pub journal: &'a Path,
    pub threads: usize,
    pub gate: Option<&'a dyn ClaimGate>,
    pub tee: Option<RecordTee<'a>>,
}

impl std::fmt::Debug for RunCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCtx")
            .field("journal", &self.journal)
            .field("threads", &self.threads)
            .field("gate", &self.gate.map(|_| "<dyn ClaimGate>"))
            .field("tee", &self.tee.map(|_| "<dyn Fn>"))
            .finish()
    }
}

/// What a finished (or stopped) campaign run produced.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The final machine-readable report, newline-terminated. For the
    /// `avf` engine this is byte-identical to `vulnstack avf --json`.
    pub report: String,
    /// Replay/execute accounting from the journal layer.
    pub stats: ResumeStats,
    /// Sites quarantined after repeated panics.
    pub quarantined: usize,
    /// True when the admission gate stopped the run early (cancellation
    /// or shutdown); the journal holds the completed prefix.
    pub stopped: bool,
}

/// One campaign engine behind the uniform dispatch.
pub trait CampaignEngine: Send + Sync {
    /// The engine name a spec selects (`avf`, `pvf`, ...).
    fn name(&self) -> &'static str;
    /// Runs the campaign to completion (or to a gate stop).
    fn run(&self, spec: &CampaignSpec, ctx: &RunCtx<'_>) -> Result<RunOutput, String>;
}

impl std::fmt::Debug for dyn CampaignEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CampaignEngine({})", self.name())
    }
}

/// The engine registry. Dispatch is by name; the set is closed and
/// mirrors [`Engine::ALL`].
pub fn engines() -> &'static [&'static dyn CampaignEngine] {
    &[
        &AvfEngine,
        &PvfEngine,
        &SweepEngine,
        &SvfEngine,
        &SvfHardenedEngine,
    ]
}

/// Looks an engine up by its spec name.
pub fn engine_for(e: Engine) -> &'static dyn CampaignEngine {
    engines()
        .iter()
        .copied()
        .find(|eng| eng.name() == e.name())
        .expect("every Engine variant has a registered CampaignEngine")
}

fn build_workload(spec: &CampaignSpec) -> Result<Workload, String> {
    let base = spec.workload.build();
    if spec.hardened && spec.engine != Engine::SvfHardened {
        let module = vulnstack_ft::harden(&base.module).map_err(|e| e.to_string())?;
        Ok(Workload { module, ..base })
    } else {
        Ok(base)
    }
}

fn journal_opts<'a>(ctx: &'a RunCtx<'_>, label: &'a str) -> JournalOpts<'a> {
    JournalOpts {
        path: ctx.journal,
        mode: ResumeMode::ResumeOrStart,
        policy: RunPolicy::default(),
        workload: label,
    }
}

fn stream_opts<'a>(ctx: &'a RunCtx<'_>) -> StreamOpts<'a> {
    StreamOpts {
        gate: ctx.gate,
        tee: ctx.tee,
        ..StreamOpts::from_env()
    }
}

/// A canonical summary report for the non-AVF engines: tally plus
/// engine/workload identity, serialized with sorted keys so repeated
/// runs compare bytewise.
fn tally_report(
    engine: &str,
    label: &str,
    extra: Vec<(&str, Value)>,
    tally: &vulnstack_core::Tally,
) -> String {
    let mut fields = vec![
        ("engine", json::s(engine)),
        ("workload", json::s(label)),
        ("injections", json::n(tally.total())),
        ("masked", json::n(tally.masked)),
        ("sdc", json::n(tally.sdc)),
        ("crash", json::n(tally.crash)),
        ("detected", json::n(tally.detected)),
    ];
    fields.extend(extra);
    json::write(&obj(fields)) + "\n"
}

struct AvfEngine;

impl CampaignEngine for AvfEngine {
    fn name(&self) -> &'static str {
        "avf"
    }

    fn run(&self, spec: &CampaignSpec, ctx: &RunCtx<'_>) -> Result<RunOutput, String> {
        let w = build_workload(spec)?;
        let label = spec.label();
        let prep = Prepared::new(&w, spec.model).map_err(|e| e.to_string())?;
        let plan = InjectionPlan::Sampled {
            n: spec.faults,
            seed: spec.seed,
        };
        let journal = journal_opts(ctx, &label);
        let (r, _prune) = avf_campaign_models_streamed(
            &prep,
            spec.structure,
            &plan,
            &spec.models,
            ctx.threads,
            Some(&journal),
            stream_opts(ctx),
            None,
        )
        .map_err(|e| e.to_string())?;
        let model_report = vec![(spec.structure.name(), r.per_model)];
        Ok(RunOutput {
            report: avf_report_json(&label, &plan, &model_report),
            stopped: r.stats.stopped,
            stats: r.stats,
            quarantined: r.quarantined.len(),
        })
    }
}

struct PvfEngine;

impl CampaignEngine for PvfEngine {
    fn name(&self) -> &'static str {
        "pvf"
    }

    fn run(&self, spec: &CampaignSpec, ctx: &RunCtx<'_>) -> Result<RunOutput, String> {
        let w = build_workload(spec)?;
        let label = spec.label();
        let mode = match spec.mode {
            "woi" => PvfMode::Woi,
            "wi" => PvfMode::Wi,
            _ => PvfMode::Wd,
        };
        let prep = FuncPrepared::new(&w, spec.isa).map_err(|e| e.to_string())?;
        let journal = journal_opts(ctx, &label);
        let out = pvf_campaign_streamed(
            &prep,
            mode,
            spec.faults,
            spec.seed,
            ctx.threads,
            Some(&journal),
            stream_opts(ctx),
            None,
        )
        .map_err(|e| e.to_string())?;
        Ok(RunOutput {
            report: tally_report(
                "pvf",
                &label,
                vec![("mode", json::s(spec.mode))],
                &out.tally,
            ),
            stopped: out.stats.stopped,
            stats: out.stats,
            quarantined: out.quarantined.len(),
        })
    }
}

struct SweepEngine;

impl CampaignEngine for SweepEngine {
    fn name(&self) -> &'static str {
        "sweep"
    }

    fn run(&self, spec: &CampaignSpec, ctx: &RunCtx<'_>) -> Result<RunOutput, String> {
        let w = build_workload(spec)?;
        let label = spec.label();
        let prep = Prepared::new(&w, spec.model).map_err(|e| e.to_string())?;
        let journal = journal_opts(ctx, &label);
        let (out, _prune) = temporal_campaign_streamed(
            &prep,
            spec.structure,
            spec.windows,
            spec.per_window,
            spec.seed,
            ctx.threads,
            false,
            Some(&journal),
            stream_opts(ctx),
            None,
        )
        .map_err(|e| e.to_string())?;
        let mut total = vulnstack_core::Tally::default();
        for t in &out.profile.tallies {
            total.masked += t.masked;
            total.sdc += t.sdc;
            total.crash += t.crash;
            total.detected += t.detected;
        }
        let series = Value::Arr(out.profile.series().into_iter().map(Value::Num).collect());
        Ok(RunOutput {
            report: tally_report(
                "sweep",
                &label,
                vec![
                    ("structure", json::s(out.profile.structure.name())),
                    ("windows", json::n(spec.windows as u64)),
                    ("series", series),
                ],
                &total,
            ),
            stopped: out.stats.stopped,
            stats: out.stats,
            quarantined: out.quarantined.len(),
        })
    }
}

struct SvfEngine;

impl CampaignEngine for SvfEngine {
    fn name(&self) -> &'static str {
        "svf"
    }

    fn run(&self, spec: &CampaignSpec, ctx: &RunCtx<'_>) -> Result<RunOutput, String> {
        let w = build_workload(spec)?;
        let label = spec.label();
        let journal = journal_opts(ctx, &label);
        let out = svf_campaign_streamed(
            &w.module,
            &w.input,
            &w.expected_output,
            spec.faults,
            spec.seed,
            ctx.threads,
            Some(&journal),
            stream_opts(ctx),
            None,
        )
        .map_err(|e| e.to_string())?;
        Ok(RunOutput {
            report: tally_report("svf", &label, vec![], &out.tally),
            stopped: out.stats.stopped,
            stats: out.stats,
            quarantined: out.quarantined.len(),
        })
    }
}

struct SvfHardenedEngine;

impl CampaignEngine for SvfHardenedEngine {
    fn name(&self) -> &'static str {
        "svf-hardened"
    }

    fn run(&self, spec: &CampaignSpec, ctx: &RunCtx<'_>) -> Result<RunOutput, String> {
        let w = spec.workload.build();
        let label = spec.label();
        let journal = journal_opts(ctx, &label);
        let out = svf_campaign_streamed_hardened(
            &w.module,
            &w.input,
            &w.expected_output,
            spec.faults,
            spec.seed,
            ctx.threads,
            Some(&journal),
            stream_opts(ctx),
            None,
        )
        .map_err(|e| e.to_string())?;
        Ok(RunOutput {
            report: tally_report("svf-hardened", &label, vec![], &out.tally),
            stopped: out.stats.stopped,
            stats: out.stats,
            quarantined: out.quarantined.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn spec(text: &str) -> CampaignSpec {
        CampaignSpec::parse(&crate::json::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn registry_covers_every_engine_uniquely() {
        let mut names: Vec<_> = engines().iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Engine::ALL.len());
        for e in Engine::ALL {
            assert_eq!(engine_for(e).name(), e.name());
        }
    }

    #[test]
    fn svf_engine_runs_and_reports() {
        let dir = std::env::temp_dir().join(format!("vs-serve-svc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("svc.journal");
        let s = spec(r#"{"engine":"svf","workload":"crc32","faults":12,"seed":7}"#);
        let ctx = RunCtx {
            journal: &journal,
            threads: 2,
            gate: None,
            tee: None,
        };
        let out = engine_for(s.engine).run(&s, &ctx).unwrap();
        assert!(!out.stopped);
        assert_eq!(out.stats.executed, 12);
        assert!(out.report.starts_with("{\"crash\":"));
        assert!(out.report.contains("\"engine\":\"svf\""));
        // Re-running the same spec replays the journal bit-identically.
        let again = engine_for(s.engine).run(&s, &ctx).unwrap();
        assert_eq!(again.report, out.report);
        assert_eq!(again.stats.replayed, 12);
        assert_eq!(again.stats.executed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tee_streams_every_record() {
        use std::sync::Mutex;
        let dir = std::env::temp_dir().join(format!("vs-serve-tee-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("tee.journal");
        let s = spec(r#"{"engine":"svf","workload":"crc32","faults":9,"seed":3}"#);
        let seen: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let tee = |i: u64, _p: &str| seen.lock().unwrap().push(i);
        let ctx = RunCtx {
            journal: &journal,
            threads: 2,
            gate: None,
            tee: Some(&tee),
        };
        engine_for(s.engine).run(&s, &ctx).unwrap();
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, (0..9).collect::<Vec<u64>>());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
