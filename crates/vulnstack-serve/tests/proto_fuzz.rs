//! Property/fuzz tests for the RPC codec: no input — malformed JSON,
//! oversized lines, truncated frames, binary garbage — may panic the
//! framing layer, and everything it rejects must carry a structured
//! error code. Complemented by `tests/serve_protocol.rs` at the repo
//! root, which drives the same codec through a live daemon socket.

use proptest::prelude::*;
use std::io::BufReader;

use vulnstack_serve::json::{self, Value};
use vulnstack_serve::proto::{self, ErrorCode, Frame, MAX_LINE};

/// A valid request every mutation starts from.
const SEED_REQUEST: &str =
    r#"{"id":7,"verb":"submit","spec":{"engine":"svf","workload":"crc32","faults":9}}"#;

/// Builds a random JSON value tree from an integer recipe — cheap
/// structured generation on top of the shim's integer strategies.
fn value_from_recipe(recipe: &[u64], depth: usize) -> Value {
    let Some((&head, rest)) = recipe.split_first() else {
        return Value::Null;
    };
    match head % if depth >= 4 { 4 } else { 6 } {
        0 => Value::Null,
        1 => Value::Bool(head & 16 != 0),
        2 => Value::Num(((head as i64) % 1_000_000) as f64),
        3 => Value::Str(format!("s{}-\"quoted\"\n\t\u{1}→{}", head % 97, head % 13)),
        4 => Value::Arr(
            rest.chunks(2)
                .take(4)
                .map(|c| value_from_recipe(c, depth + 1))
                .collect(),
        ),
        _ => Value::Obj(
            rest.chunks(3)
                .take(4)
                .enumerate()
                .map(|(i, c)| {
                    (
                        format!("k{i}-{}", c[0] % 7),
                        value_from_recipe(c, depth + 1),
                    )
                })
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Canonical write → parse is the identity on arbitrary value trees.
    #[test]
    fn json_roundtrips(recipe in prop::collection::vec(any::<u64>(), 1..24)) {
        let v = value_from_recipe(&recipe, 0);
        let text = json::write(&v);
        let back = json::parse(&text);
        prop_assert!(back.is_ok(), "canonical text failed to parse: {text}");
        prop_assert_eq!(back.unwrap(), v);
    }

    /// Arbitrary binary garbage never panics the decoder, and whatever
    /// it rejects carries one of the protocol's stable error codes.
    #[test]
    fn binary_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        match proto::decode_line(Ok(&line)) {
            Frame::Request(r) => prop_assert!(!r.verb.contains('\n')),
            Frame::Bad { code, message, .. } => {
                prop_assert!(matches!(
                    code,
                    ErrorCode::BadJson | ErrorCode::BadRequest | ErrorCode::UnknownVerb
                ));
                prop_assert!(!message.is_empty());
            }
            Frame::Eof => prop_assert!(false, "decode_line never yields Eof"),
        }
    }

    /// Truncating a valid request at any byte yields a structured
    /// rejection (or, at full length, the request) — never a panic.
    #[test]
    fn truncated_frames_are_structured(cut in 0usize..80) {
        let cut = cut.min(SEED_REQUEST.len());
        let prefix: String = SEED_REQUEST.chars().take(cut).collect();
        match proto::decode_line(Ok(&prefix)) {
            Frame::Request(r) => {
                prop_assert_eq!(cut, SEED_REQUEST.len());
                prop_assert_eq!(r.verb.as_str(), "submit");
            }
            Frame::Bad { code, .. } => prop_assert!(matches!(
                code,
                ErrorCode::BadJson | ErrorCode::BadRequest
            )),
            Frame::Eof => prop_assert!(false, "decode_line never yields Eof"),
        }
    }

    /// Byte-flipping a valid request never panics, and a surviving parse
    /// still carries a usable id/verb pair.
    #[test]
    fn mutated_requests_never_panic(pos in 0usize..78, byte in any::<u8>()) {
        let mut bytes = SEED_REQUEST.as_bytes().to_vec();
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] = byte;
        let line = String::from_utf8_lossy(&bytes).into_owned();
        match proto::decode_line(Ok(&line)) {
            Frame::Request(r) => prop_assert!(!r.verb.contains('\n')),
            Frame::Bad { message, .. } => prop_assert!(!message.is_empty()),
            Frame::Eof => prop_assert!(false, "decode_line never yields Eof"),
        }
    }

    /// Oversized lines are reported with their true length and the
    /// stream stays framed: the following request still decodes.
    #[test]
    fn oversized_lines_resync(extra in 1usize..4096) {
        let stream = format!(
            "{}\n{{\"id\":2,\"verb\":\"ping\"}}\n",
            "y".repeat(MAX_LINE + extra)
        );
        let mut r = BufReader::new(stream.as_bytes());
        match proto::read_frame(&mut r).unwrap() {
            Frame::Bad { code, .. } => prop_assert_eq!(code, ErrorCode::OversizedLine),
            other => prop_assert!(false, "expected oversized-line, got {other:?}"),
        }
        match proto::read_frame(&mut r).unwrap() {
            Frame::Request(req) => prop_assert_eq!(req.verb.as_str(), "ping"),
            other => prop_assert!(false, "expected request after resync, got {other:?}"),
        }
        match proto::read_frame(&mut r).unwrap() {
            Frame::Eof => {}
            other => prop_assert!(false, "expected eof, got {other:?}"),
        }
    }

    /// Deeply nested documents are rejected by depth, not by stack
    /// overflow.
    #[test]
    fn deep_nesting_is_bounded(depth in 33usize..600) {
        let doc = "[".repeat(depth) + &"]".repeat(depth);
        let e = json::parse(&doc);
        prop_assert!(e.is_err());
    }
}
