//! Streaming-equivalence: the bounded-memory sink pipeline must be an
//! *observationally invisible* refactor. For every engine family the
//! streamed campaign's tallies — and, via the spill file, its full
//! record stream — must be bit-identical to the legacy
//! collect-then-write path, through the tightest possible channel
//! (capacity 1, maximum backpressure), through panics mid-stream, and
//! under memory-quota shedding (which may drop telemetry spans but
//! never records).

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use vulnstack_core::trace::CampaignMetrics;
use vulnstack_core::{Fingerprint, MemQuota, ResumableCampaign, ResumeMode, RunPolicy, StreamOpts};
use vulnstack_gefin::{
    avf_campaign, avf_campaign_models, avf_campaign_models_streamed, draw_sites, encode_record,
    per_model_tallies, pvf_campaign, pvf_campaign_streamed, temporal_campaign,
    temporal_campaign_streamed, FuncPrepared, InjectionPlan, Prepared, PvfMode,
};
use vulnstack_isa::Isa;
use vulnstack_llfi::{svf_campaign, svf_campaign_streamed};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::{CoreModel, FaultModel};
use vulnstack_workloads::{Workload, WorkloadId};

const N: usize = 24;
const SEED: u64 = 11;
const STRUCTURE: HwStructure = HwStructure::RegisterFile;

fn prep() -> &'static Prepared {
    static PREP: OnceLock<Prepared> = OnceLock::new();
    PREP.get_or_init(|| {
        let w = WorkloadId::Crc32.build();
        Prepared::new(&w, CoreModel::A72).expect("prepare crc32/A72")
    })
}

fn crc32() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| WorkloadId::Crc32.build())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulnstack-streameq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Streaming options pinned to an explicit channel bound plus a spill
/// file, independent of the environment.
fn spill_opts(cap: usize, spill: &Path) -> StreamOpts<'_> {
    StreamOpts {
        channel_cap: cap,
        spill: Some(spill),
        gate: None,
        tee: None,
    }
}

/// Reads a spill file back and orders its payloads by site index — the
/// settle order varies with threading, the indexed record set must not.
fn spilled_by_index(records: &vulnstack_core::RecordHandle) -> Vec<(u64, String)> {
    let mut got = records.payloads().expect("readable spill");
    got.sort();
    got
}

#[test]
fn streamed_avf_records_are_bit_identical_to_legacy_collect() {
    let prep = prep();
    let baseline = avf_campaign(prep, STRUCTURE, N, SEED, 4);
    let plan = InjectionPlan::Sampled { n: N, seed: SEED };
    // Channel capacities 1 (every push blocks: maximum backpressure) and
    // a comfortable bound must both reproduce the legacy records.
    for cap in [1usize, 64] {
        let spill = tmp(&format!("avf-cap{cap}.records"));
        let (out, stats) = avf_campaign_models_streamed(
            prep,
            STRUCTURE,
            &plan,
            &[FaultModel::BitFlip],
            4,
            None,
            spill_opts(cap, &spill),
            None,
        )
        .unwrap();
        assert!(stats.is_none(), "cap={cap}: sampled plans do not prune");
        assert_eq!(out.tally, baseline.tally, "cap={cap}");
        assert_eq!(out.stats.executed, N, "cap={cap}");
        let want: Vec<(u64, String)> = baseline
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u64, encode_record(r)))
            .collect();
        let handle = out.records.expect("spill requested");
        assert_eq!(handle.count(), N as u64);
        assert_eq!(
            spilled_by_index(&handle),
            want,
            "cap={cap}: spilled records must be bit-identical to the legacy vector"
        );
        // The incremental per-model accumulation must agree with the
        // legacy whole-vector pass.
        assert_eq!(out.per_model, per_model_tallies(&baseline.records));
        let _ = std::fs::remove_file(&spill);
    }
}

#[test]
fn streamed_exhaustive_model_sweep_matches_the_models_engine() {
    let prep = prep();
    let cycle = prep.golden.cycles / 2;
    // Byte-corrupt plus the single-site instr-skip: the full (site,
    // model) product small enough for a debug-build test.
    let models = [FaultModel::ByteCorrupt, FaultModel::InstrSkip];
    let plan = InjectionPlan::Exhaustive { cycle };
    let (baseline, base_stats) = avf_campaign_models(prep, STRUCTURE, &plan, &models, 4, None);
    let spill = tmp("avf-exhaustive.records");
    let (out, stats) = avf_campaign_models_streamed(
        prep,
        STRUCTURE,
        &plan,
        &models,
        4,
        None,
        spill_opts(8, &spill),
        None,
    )
    .unwrap();
    let stats = stats.expect("exhaustive plans execute through the pruner");
    let base_stats = base_stats.expect("legacy exhaustive prunes too");
    assert_eq!(stats.sites, base_stats.sites);
    assert_eq!(stats.dead_masked, base_stats.dead_masked);
    assert_eq!(out.tally, baseline.tally);
    assert_eq!(out.per_model, per_model_tallies(&baseline.records));
    let want: Vec<(u64, String)> = baseline
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| (i as u64, encode_record(r)))
        .collect();
    let handle = out.records.expect("spill requested");
    assert_eq!(
        spilled_by_index(&handle),
        want,
        "exhaustive streamed records must be bit-identical"
    );
    let _ = std::fs::remove_file(&spill);
}

#[test]
fn streamed_temporal_sweep_matches_the_legacy_profile() {
    let prep = prep();
    let (windows, per_window) = (4usize, 8usize);
    let baseline = temporal_campaign(prep, STRUCTURE, windows, per_window, SEED, 4);
    for pruned in [false, true] {
        let (out, stats) = temporal_campaign_streamed(
            prep,
            STRUCTURE,
            windows,
            per_window,
            SEED,
            4,
            pruned,
            None,
            StreamOpts::from_env(),
            None,
        )
        .unwrap();
        assert_eq!(out.profile.tallies, baseline.tallies, "pruned={pruned}");
        assert_eq!(out.profile.fpms, baseline.fpms, "pruned={pruned}");
        assert_eq!(out.profile.bounds, baseline.bounds, "pruned={pruned}");
        assert_eq!(stats.is_some(), pruned);
        assert_eq!(out.stats.executed, windows * per_window);
    }
}

#[test]
fn streamed_pvf_and_svf_match_their_legacy_campaigns() {
    let w = crc32();
    let fprep = FuncPrepared::new(w, Isa::Va64).expect("prepare crc32/va64");
    for mode in [PvfMode::Wd, PvfMode::Woi, PvfMode::Wi] {
        let baseline = pvf_campaign(&fprep, mode, N, SEED, 4);
        let out =
            pvf_campaign_streamed(&fprep, mode, N, SEED, 4, None, StreamOpts::from_env(), None)
                .unwrap();
        assert_eq!(out.tally, baseline, "mode={mode:?}");
        assert_eq!(out.stats.executed, N);
    }
    let baseline = svf_campaign(&w.module, &w.input, &w.expected_output, N, SEED, 4);
    // Capacity 1 exercises backpressure on the software engine too.
    let spill = tmp("svf.records");
    let out = svf_campaign_streamed(
        &w.module,
        &w.input,
        &w.expected_output,
        N,
        SEED,
        4,
        None,
        spill_opts(1, &spill),
        None,
    )
    .unwrap();
    assert_eq!(out.tally, baseline);
    let handle = out.records.expect("spill requested");
    assert_eq!(handle.count(), N as u64);
    // Every spilled payload is a decodable effect name.
    handle
        .for_each_payload(|_, p| {
            assert!(
                vulnstack_core::FaultEffect::from_name(p).is_some(),
                "undecodable spill payload {p:?}"
            );
        })
        .unwrap();
    let _ = std::fs::remove_file(&spill);
}

/// A worker panic mid-stream degrades to a durable quarantine record —
/// the stream keeps flowing, every healthy site still lands, and a
/// resume replays the quarantine instead of re-running the poison.
#[test]
fn a_panic_mid_stream_quarantines_without_stalling_the_pipeline() {
    let prep = prep();
    let sites = draw_sites(prep, STRUCTURE, N, SEED);
    let order: Vec<usize> = (0..sites.len()).collect();
    let baseline = avf_campaign(prep, STRUCTURE, N, SEED, 4);
    let path = tmp("stream-poison.journal");
    let _ = std::fs::remove_file(&path);
    let fingerprint = Fingerprint {
        engine: "test-streamed-poison".to_string(),
        workload: "crc32".to_string(),
        config: "A72".to_string(),
        structure: STRUCTURE.name().to_string(),
        seed: SEED,
        samples: N as u64,
        params: String::new(),
        version: 1,
    };
    let campaign = ResumableCampaign {
        path: &path,
        fingerprint,
        mode: ResumeMode::Fresh,
        items: &sites,
        order: &order,
        threads: 4,
        policy: RunPolicy { max_retries: 1 },
        meta: &[],
    };
    let poisoned = 3usize;
    let mut folded = 0usize;
    // Capacity 1: the panic happens while other workers are blocked on
    // the full channel, the worst interleaving for a stalled sink.
    let out = campaign
        .run_streaming(
            StreamOpts {
                channel_cap: 1,
                spill: None,
                gate: None,
                tee: None,
            },
            |i, &(cycle, bit)| {
                assert!(i != poisoned, "injector blew up on site {i}");
                vulnstack_gefin::avf::run_one(prep, STRUCTURE, cycle, bit)
            },
            encode_record,
            vulnstack_gefin::decode_record,
            |_, _| folded += 1,
            None,
        )
        .unwrap();
    assert_eq!(folded, N - 1, "every healthy record reaches the fold");
    assert_eq!(out.quarantined.len(), 1);
    assert_eq!(out.quarantined[0].index, poisoned);
    assert_eq!(out.quarantined[0].attempts, 2, "1 try + 1 retry");
    assert!(out.quarantined[0].message.contains("blew up on site 3"));
    assert_eq!(out.stats.executed, N);

    // Resume: the quarantine replays durably, the healthy records fold
    // again bit-identically (checked against the legacy campaign).
    let mut replayed: Vec<(u64, String)> = Vec::new();
    let resumed = ResumableCampaign {
        mode: ResumeMode::ResumeRequired,
        ..campaign
    }
    .run_streaming(
        StreamOpts {
            channel_cap: 1,
            spill: None,
            gate: None,
            tee: None,
        },
        |_, &(cycle, bit)| vulnstack_gefin::avf::run_one(prep, STRUCTURE, cycle, bit),
        encode_record,
        vulnstack_gefin::decode_record,
        |i, p| replayed.push((i, p.to_string())),
        None,
    )
    .unwrap();
    assert_eq!(resumed.stats.executed, 0);
    assert_eq!(resumed.stats.replayed, N);
    assert_eq!(resumed.stats.quarantined, 1);
    replayed.sort();
    let want: Vec<(u64, String)> = baseline
        .records
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != poisoned)
        .map(|(i, r)| (i as u64, encode_record(r)))
        .collect();
    assert_eq!(replayed, want);
    let _ = std::fs::remove_file(&path);
}

/// Memory-quota pressure sheds telemetry spans (counted degradation),
/// never records: a streamed campaign under a starved quota produces
/// bit-identical results.
#[test]
fn quota_shedding_degrades_telemetry_but_never_records() {
    let prep = prep();
    let baseline = avf_campaign(prep, STRUCTURE, N, SEED, 4);
    // A quota that fits almost nothing: spans must shed immediately.
    let quota = MemQuota::with_limit(64);
    let metrics = CampaignMetrics::with_quota("quota-shed", &quota);
    let plan = InjectionPlan::Sampled { n: N, seed: SEED };
    let spill = tmp("quota-shed.records");
    let (out, _) = avf_campaign_models_streamed(
        prep,
        STRUCTURE,
        &plan,
        &[FaultModel::BitFlip],
        4,
        None,
        spill_opts(4, &spill),
        Some(&metrics),
    )
    .unwrap();
    assert_eq!(out.tally, baseline.tally, "shedding must not touch records");
    let want: Vec<(u64, String)> = baseline
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| (i as u64, encode_record(r)))
        .collect();
    assert_eq!(spilled_by_index(&out.records.expect("spill")), want);
    let report = metrics.report();
    assert_eq!(report.sites, N as u64, "site counts stay exact");
    assert!(report.spans_shed > 0, "a 64 B quota must shed spans");
    assert!(quota.shedding_started());
    let shed = quota.shed_report();
    assert!(shed.events > 0 && shed.bytes > 0, "{shed:?}");
    let _ = std::fs::remove_file(&spill);
}
