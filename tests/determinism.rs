//! Workspace-level determinism guarantees: identical seeds must give
//! identical campaign results across repeated runs and thread counts —
//! the property that makes every figure in EXPERIMENTS.md reproducible.

use vulnstack_gefin::{avf_campaign, pvf_campaign, FuncPrepared, Prepared, PvfMode};
use vulnstack_isa::Isa;
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::WorkloadId;

#[test]
fn avf_campaigns_repeat_bit_for_bit() {
    let w = WorkloadId::Dijkstra.build();
    let prep = Prepared::new(&w, CoreModel::A57).unwrap();
    let a = avf_campaign(&prep, HwStructure::L1d, 30, 77, 1);
    let b = avf_campaign(&prep, HwStructure::L1d, 30, 77, 3);
    assert_eq!(a.tally, b.tally);
    let pa: Vec<_> = a
        .records
        .iter()
        .map(|r| (r.cycle, r.bit, r.effect, r.fpm))
        .collect();
    let pb: Vec<_> = b
        .records
        .iter()
        .map(|r| (r.cycle, r.bit, r.effect, r.fpm))
        .collect();
    assert_eq!(pa, pb, "per-record results must match across thread counts");
}

#[test]
fn pvf_and_svf_campaigns_repeat() {
    let w = WorkloadId::Corner.build();
    let fprep = FuncPrepared::new(&w, Isa::Va32).unwrap();
    let a = pvf_campaign(&fprep, PvfMode::Wd, 20, 5, 2);
    let b = pvf_campaign(&fprep, PvfMode::Wd, 20, 5, 5);
    assert_eq!(a, b);

    let s1 = vulnstack_llfi::svf_campaign(&w.module, &w.input, &w.expected_output, 25, 9, 1);
    let s2 = vulnstack_llfi::svf_campaign(&w.module, &w.input, &w.expected_output, 25, 9, 4);
    assert_eq!(s1, s2);
}

#[test]
fn golden_runs_are_cycle_exact_across_instances() {
    let w = WorkloadId::Fft.build();
    let p1 = Prepared::new(&w, CoreModel::A15).unwrap();
    let p2 = Prepared::new(&w, CoreModel::A15).unwrap();
    assert_eq!(p1.golden.cycles, p2.golden.cycles);
    assert_eq!(p1.golden.instrs, p2.golden.instrs);
    assert_eq!(p1.golden.output, p2.golden.output);
}

#[test]
fn workload_construction_is_pure() {
    for id in WorkloadId::ALL {
        let a = id.build();
        let b = id.build();
        assert_eq!(a.module, b.module, "{id}");
        assert_eq!(a.input, b.input, "{id}");
        assert_eq!(a.expected_output, b.expected_output, "{id}");
    }
}
