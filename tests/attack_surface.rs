//! Attack-surface report: golden-file stability and injection-confirmed
//! findings.
//!
//! Two claims are pinned here. First, the kernel syscall path's static
//! attack report is *stable* — its finding lines match a checked-in
//! golden file, so any change to the taint rules, the kernel assembly,
//! or the report format shows up as a reviewable diff (regenerate with
//! `VULNSTACK_UPDATE_GOLDEN=1 cargo test --test attack_surface`).
//! Second, the report is not just plausible text: a reported
//! (site, model) pair is *confirmed by injection* — corrupting exactly
//! the register the report names, at exactly the reported instruction,
//! flips a passing bounds check into a kernel kill.

use vulnstack_analyze::attack::FindingKind;
use vulnstack_analyze::{attack_surface, build_cfg_segments, AttackReport, TextSegment};
use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_isa::{Isa, TrapCause};
use vulnstack_kernel::{build_kernel, memmap, SystemImage};
use vulnstack_microarch::func::Mode;
use vulnstack_microarch::{FuncCore, RunStatus};
use vulnstack_vir::ModuleBuilder;

/// The CLI's `analyze attack kernel` pipeline, as a library call.
fn kernel_report(isa: Isa) -> AttackReport {
    let k = build_kernel(isa).expect("kernel assembles");
    let segs = [
        TextSegment {
            name: "kboot".to_string(),
            start_word: memmap::KERNEL_BOOT / 4,
            words: k.boot,
        },
        TextSegment {
            name: "ktrap".to_string(),
            start_word: memmap::TRAP_VEC / 4,
            words: k.trap,
        },
    ];
    attack_surface(&build_cfg_segments(isa, &segs), "kernel")
}

#[test]
fn kernel_attack_report_matches_golden_file() {
    let report = kernel_report(Isa::Va64);
    let mut text = report.summary();
    text.push('\n');
    for line in report.finding_lines() {
        text.push_str(&line);
        text.push('\n');
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/kernel_attack_va64.txt"
    );
    if std::env::var_os("VULNSTACK_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &text).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing; regenerate with VULNSTACK_UPDATE_GOLDEN=1");
    assert_eq!(
        text, golden,
        "kernel attack report drifted from the golden file; if the change \
         is intended, regenerate with VULNSTACK_UPDATE_GOLDEN=1"
    );
}

#[test]
fn kernel_syscall_path_has_subvertible_guards() {
    // The acceptance bar: the report must statically identify at least
    // one skippable guard or corruptible branch condition inside the
    // trap handler (the syscall path) on both ISAs.
    for isa in [Isa::Va32, Isa::Va64] {
        let report = kernel_report(isa);
        let in_trap = |f: &&vulnstack_analyze::AttackFinding| f.func == "ktrap";
        assert!(
            report
                .of_kind(FindingKind::SkippableGuard)
                .any(|f| in_trap(&f))
                && report
                    .of_kind(FindingKind::CorruptibleCondition)
                    .any(|f| in_trap(&f)),
            "{isa:?}: no subvertible guard reported in the trap handler"
        );
    }
}

/// A benign victim program: one valid 4-byte write, then exit 0.
fn victim_image(isa: Isa) -> SystemImage {
    let mut mb = ModuleBuilder::new("victim");
    let mut f = mb.function("main", 0);
    let slot = f.stack_slot(4, 4);
    let p = f.slot_addr(slot);
    let v = f.c(0x5a5a_5a5a_u32 as i32);
    f.store32(v, p, 0);
    f.sys_write(p, 4);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);
    let m = mb.finish().unwrap();
    let c = compile(&m, isa, &CompileOpts::default()).unwrap();
    SystemImage::build(&c, &[]).unwrap()
}

/// Runs the victim until the core sits at `target_pc` in kernel mode
/// (the first dynamic arrival), or `None` if that instruction is never
/// reached on this program's syscall path.
fn run_to_kernel_pc(img: &SystemImage, target_pc: u64) -> Option<FuncCore> {
    let mut core = FuncCore::new(img);
    while !core.ended() && core.icount() < 50_000_000 {
        if core.mode() == Mode::Kernel && core.pc() == target_pc {
            return Some(core);
        }
        core.step();
    }
    None
}

#[test]
fn reported_corruptible_condition_manifests_under_injection() {
    // End-to-end confirmation of one reported (site, model) pair: take
    // the trap handler's first corruptible-condition finding (the
    // sys_write bounds check), run a benign program to that exact
    // instruction in kernel mode, flip one bit of the register the
    // report names, and watch the passing check become an access-fault
    // kill — the single-bit model realising the reported subversion.
    let isa = Isa::Va64;
    let report = kernel_report(isa);
    let findings: Vec<_> = report
        .of_kind(FindingKind::CorruptibleCondition)
        .filter(|f| f.func == "ktrap")
        .collect();
    assert!(!findings.is_empty(), "no corruptible conditions in ktrap");

    let img = victim_image(isa);

    // Fault-free baseline: the write passes the bounds check.
    let golden = FuncCore::new(&img).run(50_000_000);
    assert_eq!(golden.status, RunStatus::Exited(0));
    assert_eq!(golden.output.len(), 4);

    // For each reported site: stop at that branch in kernel mode, flip
    // one bit of the register the report names, run out, and compare
    // against the golden outcome.
    let mut manifested = Vec::new();
    for finding in &findings {
        let target_pc = finding.word_off as u64 * 4;
        let victim = *finding.regs.first().expect("finding names a register");
        // Not every trap-handler branch is on this program's syscall
        // path (e.g. the read handler's checks).
        let Some(mut core) = run_to_kernel_pc(&img, target_pc) else {
            continue;
        };
        core.poke_reg_bit(victim, 0);
        while !core.ended() && core.icount() < 50_000_000 {
            core.step();
        }
        let out = core.into_outcome();
        if out.status != golden.status || out.output != golden.output {
            manifested.push((target_pc, victim, out.status));
        }
    }
    assert!(
        !manifested.is_empty(),
        "no reported corruptible condition manifested under single-bit injection"
    );
    // The sys_write bounds check is among them, and subverting it is an
    // access-fault kill, not a silent corruption.
    assert!(
        manifested
            .iter()
            .any(|&(_, _, s)| s == RunStatus::Crashed(TrapCause::AccessFault.code() as u32)),
        "no subverted guard ended in an access-fault kill: {manifested:x?}"
    );
}

#[test]
fn every_fault_model_reproduces_a_static_finding_dynamically() {
    // The per-model case study: for each dynamic fault model, at least
    // one static finding on the kernel syscall path must be reproducible
    // by actually performing that model's corruption at the reported
    // instruction. The first manifesting (finding, outcome) pair per
    // model is pinned to a golden file, so any drift in the taint rules,
    // the kernel assembly, or the dynamic fault semantics shows up as a
    // reviewable diff (regenerate with VULNSTACK_UPDATE_GOLDEN=1).
    let isa = Isa::Va64;
    let report = kernel_report(isa);
    let img = victim_image(isa);
    let golden = FuncCore::new(&img).run(50_000_000);
    assert_eq!(golden.status, RunStatus::Exited(0));
    assert_eq!(golden.output.len(), 4);

    // (dynamic model, the static taint model it realises, the finding
    // kind it attacks, the corruption primitive).
    type Corrupt = fn(&mut FuncCore, vulnstack_isa::Reg);
    let cases: [(&str, &str, FindingKind, Corrupt); 4] = [
        (
            "bit-flip",
            "single-bit",
            FindingKind::CorruptibleCondition,
            |core, r| core.poke_reg_bit(r, 0),
        ),
        (
            "byte-corrupt",
            "byte-corrupt",
            FindingKind::CorruptibleCondition,
            |core, r| core.poke_reg_byte(r, 0),
        ),
        (
            "instr-skip",
            "instr-skip",
            FindingKind::SkippableGuard,
            |core, _| core.skip_next_instr(),
        ),
        (
            "stuck-at",
            "stuck-at",
            FindingKind::CorruptibleCondition,
            |core, r| core.set_stuck_reg(r, 0),
        ),
    ];

    let mut lines = Vec::new();
    for (label, static_name, kind, corrupt) in cases {
        let mut manifested = None;
        for finding in report.of_kind(kind).filter(|f| f.func == "ktrap") {
            assert!(
                finding.models.iter().any(|m| m.name() == static_name),
                "{label}: static finding does not claim model {static_name}: {finding}"
            );
            let target_pc = finding.word_off as u64 * 4;
            let Some(mut core) = run_to_kernel_pc(&img, target_pc) else {
                continue;
            };
            let victim = finding.regs.first().copied();
            corrupt(&mut core, victim.unwrap_or(vulnstack_isa::Reg(0)));
            while !core.ended() && core.icount() < 50_000_000 {
                core.step();
            }
            let out = core.into_outcome();
            if out.status != golden.status || out.output != golden.output {
                let rel = (finding.word_off - finding.func_start_word) * 4;
                let reg = victim.map_or("-".to_string(), |r| format!("r{}", r.0));
                manifested = Some(format!(
                    "{label}: ktrap+{rel:#x} [{kind}] reg={reg} -> {:?} output-changed={}",
                    out.status,
                    out.output != golden.output
                ));
                break;
            }
        }
        let line = manifested
            .unwrap_or_else(|| panic!("{label}: no static ktrap finding manifested dynamically"));
        lines.push(line);
    }

    let mut text = lines.join("\n");
    text.push('\n');
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/kernel_attack_dynamic_va64.txt"
    );
    if std::env::var_os("VULNSTACK_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &text).expect("write golden file");
        return;
    }
    let golden_text = std::fs::read_to_string(path)
        .expect("golden file missing; regenerate with VULNSTACK_UPDATE_GOLDEN=1");
    assert_eq!(
        text, golden_text,
        "per-model dynamic case-study outcomes drifted from the golden file; \
         if the change is intended, regenerate with VULNSTACK_UPDATE_GOLDEN=1"
    );
}
