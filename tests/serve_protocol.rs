//! End-to-end integration harness for the `vulnstack-serve` daemon.
//!
//! Every test here spawns the real `vulnstack` binary as a child
//! process and drives real sockets: submit → stream → complete,
//! protocol abuse, SIGKILL → restart → resume, multi-tenant
//! concurrency, and the socket-bind-failure regression. This is the
//! proof that the daemon's promises — byte-identical reports vs the
//! CLI, bit-identical streams across a crash, structured errors for
//! every malformed input — hold over the wire, not just in unit tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use vulnstack_serve::client::{Client, StreamedRecord};
use vulnstack_serve::json::{self, Value};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_vulnstack")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulnstack-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running daemon child process; killed on drop.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `vulnstack serve` on a fresh port and waits for its
    /// "listening on ADDR" banner.
    fn spawn(state: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(bin())
            .arg("serve")
            .args(["--state", state.to_str().unwrap()])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn daemon");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read daemon banner");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn spawn_tcp(state: &Path) -> Daemon {
        Daemon::spawn(state, &["--listen", "127.0.0.1:0", "--threads", "1"])
    }

    /// SIGKILL — the crash half of the recovery test.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

fn avf_spec() -> Value {
    json::parse(
        r#"{"engine":"avf","workload":"qsort","model":"A9","structure":"RF","faults":20,"seed":5}"#,
    )
    .unwrap()
}

fn svf_spec(workload: &str, faults: u64, priority: &str) -> Value {
    json::parse(&format!(
        r#"{{"engine":"svf","workload":"{workload}","faults":{faults},"seed":11,"priority":"{priority}"}}"#
    ))
    .unwrap()
}

/// Sorts a streamed record set into index order for set-wise
/// comparison (multi-threaded runs complete sites in any order).
fn by_index(mut records: Vec<StreamedRecord>) -> Vec<StreamedRecord> {
    records.sort_by_key(|r| r.index);
    records
}

/// Tentpole: submit over a real socket, stream every record, and check
/// the final report byte-identical to `vulnstack avf --json` for the
/// same campaign — the daemon and the CLI share one report builder.
#[test]
fn submit_stream_complete_matches_cli_byte_for_byte() {
    let state = temp_dir("cli-cmp");
    let daemon = Daemon::spawn_tcp(&state);
    let mut client = Client::connect(&daemon.addr).unwrap();
    let mut records = Vec::new();
    let done = client
        .run_campaign(&avf_spec(), |r| records.push(r.clone()))
        .unwrap();
    assert_eq!(done.state, "done");
    assert_eq!(records.len(), 20, "one streamed record per injection");
    let indices: Vec<u64> = by_index(records).iter().map(|r| r.index).collect();
    assert_eq!(indices, (0..20).collect::<Vec<u64>>());

    let cli_json = state.join("cli.json");
    let status = Command::new(bin())
        .args([
            "avf",
            "qsort",
            "--model",
            "A9",
            "--structure",
            "RF",
            "--faults",
            "20",
            "--seed",
            "5",
            "--plan",
            "sampled",
            "--json",
        ])
        .arg(&cli_json)
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success());
    let cli_bytes = std::fs::read_to_string(&cli_json).unwrap();
    assert_eq!(
        done.report, cli_bytes,
        "daemon report and CLI --json must be byte-identical"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(&state);
}

/// Protocol abuse over a live socket: malformed JSON, oversized lines,
/// bad requests, unknown verbs, bad params, stale handles — each gets a
/// structured error and the connection survives them all.
#[test]
fn protocol_errors_are_structured_and_survivable() {
    let state = temp_dir("proto-abuse");
    let daemon = Daemon::spawn_tcp(&state);
    let mut stream = std::net::TcpStream::connect(&daemon.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut roundtrip = |line: &str| -> Value {
        stream.write_all(line.as_bytes()).unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        json::parse(resp.trim()).expect("daemon responses always parse")
    };
    let code_of = |v: &Value| -> String {
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            .unwrap_or("<none>")
            .to_string()
    };

    let cases: Vec<(String, &str)> = vec![
        ("{not json\n".to_string(), "bad-json"),
        (format!("{}\n", "z".repeat(70 * 1024)), "oversized-line"),
        ("[1,2,3]\n".to_string(), "bad-request"),
        ("{\"verb\":\"list\"}\n".to_string(), "bad-request"),
        ("{\"id\":5,\"verb\":\"frobnicate\"}\n".to_string(), "unknown-verb"),
        ("{\"id\":6,\"verb\":\"submit\"}\n".to_string(), "bad-params"),
        (
            "{\"id\":7,\"verb\":\"submit\",\"spec\":{\"engine\":\"avf\",\"workload\":\"noexist\"}}\n"
                .to_string(),
            "bad-params",
        ),
        (
            "{\"id\":8,\"verb\":\"status\",\"handle\":\"feedfacecafebeef\"}\n".to_string(),
            "unknown-handle",
        ),
        (
            "{\"id\":9,\"verb\":\"subscribe\",\"handle\":\"0000000000000000\"}\n".to_string(),
            "unknown-handle",
        ),
        (
            "{\"id\":10,\"verb\":\"cancel\",\"handle\":\"ffffffffffffffff\"}\n".to_string(),
            "unknown-handle",
        ),
    ];
    for (line, want) in cases {
        let resp = roundtrip(&line);
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(code_of(&resp), want, "for request {line:?}");
    }
    // The same connection still serves valid requests.
    let resp = roundtrip("{\"id\":11,\"verb\":\"ping\"}\n");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    drop(daemon);
    let _ = std::fs::remove_dir_all(&state);
}

/// Headline: SIGKILL the daemon mid-campaign, restart it on the same
/// state directory, and verify the re-attached campaign resumes from
/// its journal and serves a record stream and final report
/// bit-identical to an uninterrupted run.
#[test]
fn sigkill_restart_resumes_bit_identically() {
    let spec = svf_spec("crc32", 3000, "normal");

    // Control: the same campaign, uninterrupted, on a fresh daemon.
    let control_state = temp_dir("resume-control");
    let control = Daemon::spawn_tcp(&control_state);
    let mut client = Client::connect(&control.addr).unwrap();
    let mut control_records = Vec::new();
    let control_done = client
        .run_campaign(&spec, |r| control_records.push(r.clone()))
        .unwrap();
    assert_eq!(control_done.state, "done");
    assert_eq!(control_done.executed, 3000);
    assert_eq!(control_done.replayed, 0);
    drop(control);

    // Victim: same campaign; SIGKILL the daemon after 20 streamed
    // records, while injections are still in flight.
    let state = temp_dir("resume-victim");
    let mut daemon = Daemon::spawn_tcp(&state);
    let mut c = Client::connect(&daemon.addr).unwrap();
    let resp = c.call("submit", vec![("spec", spec.clone())]).unwrap();
    let handle = resp
        .get("handle")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let sub = c
        .send("subscribe", vec![("handle", json::s(&handle))])
        .unwrap();
    c.wait_response(sub, |_| {}).unwrap();
    let mut seen = 0;
    while seen < 20 {
        let ev = c.read_event().unwrap();
        if ev.get("event").and_then(Value::as_str) == Some("record") {
            seen += 1;
        }
        assert_ne!(
            ev.get("event").and_then(Value::as_str),
            Some("done"),
            "campaign finished before the kill window; raise the fault count"
        );
    }
    daemon.kill();

    // Restart on the same state dir: the daemon rescans spec files and
    // resumes from the journal. A resubmit of the same spec maps onto
    // the same handle; the subscriber replays the full stream.
    let daemon2 = Daemon::spawn_tcp(&state);
    let mut client2 = Client::connect(&daemon2.addr).unwrap();
    let mut resumed_records = Vec::new();
    let resumed_done = client2
        .run_campaign(&spec, |r| resumed_records.push(r.clone()))
        .unwrap();
    assert_eq!(resumed_done.state, "done");
    assert!(
        resumed_done.replayed >= 20,
        "journal must hold at least the records streamed before the kill \
         (replayed {})",
        resumed_done.replayed
    );
    assert!(
        resumed_done.executed > 0,
        "the kill landed mid-campaign, so a tail must execute fresh"
    );
    assert_eq!(resumed_done.replayed + resumed_done.executed, 3000);

    // Bit-identity: the resumed stream and report equal the
    // uninterrupted control's, record for record, byte for byte.
    assert_eq!(by_index(resumed_records), by_index(control_records));
    assert_eq!(resumed_done.report, control_done.report);
    drop(daemon2);
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&control_state);
}

/// Multi-tenant concurrency: several clients submit campaigns at mixed
/// priorities over one shared pool; all complete, every stream matches
/// its solo-run control bit-for-bit, and both tenants were actually
/// granted slots. (Proportional-share bounds are pinned down by the
/// stride-scheduler unit tests in `vulnstack-core::fair`.)
#[test]
fn concurrent_campaigns_all_complete_with_solo_identical_streams() {
    let specs = [
        svf_spec("crc32", 300, "high"),
        svf_spec("sha", 300, "low"),
        svf_spec("fft", 200, "normal"),
    ];

    // Solo controls, run sequentially on their own daemon.
    let solo_state = temp_dir("conc-solo");
    let solo = Daemon::spawn_tcp(&solo_state);
    let mut solo_runs = Vec::new();
    for spec in &specs {
        let mut client = Client::connect(&solo.addr).unwrap();
        let mut records = Vec::new();
        let done = client
            .run_campaign(spec, |r| records.push(r.clone()))
            .unwrap();
        assert_eq!(done.state, "done");
        solo_runs.push((by_index(records), done.report));
    }
    drop(solo);

    // Contended: one daemon, one client thread per campaign.
    let state = temp_dir("conc-shared");
    let daemon = Daemon::spawn(
        &state,
        &["--listen", "127.0.0.1:0", "--threads", "2", "--slots", "1"],
    );
    let results: Vec<(Vec<StreamedRecord>, String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| {
                let addr = daemon.addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    let mut records = Vec::new();
                    let done = client
                        .run_campaign(spec, |r| records.push(r.clone()))
                        .unwrap();
                    (by_index(records), done.report, done.state)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for ((records, report, state_name), (solo_records, solo_report)) in
        results.iter().zip(&solo_runs)
    {
        assert_eq!(state_name, "done");
        assert_eq!(records, solo_records, "contended stream != solo stream");
        assert_eq!(report, solo_report, "contended report != solo report");
    }

    // Every tenant was granted pool slots (status exposes the stride
    // scheduler's grant counter).
    let mut client = Client::connect(&daemon.addr).unwrap();
    let list = client.call("list", vec![]).unwrap();
    let Some(Value::Arr(items)) = list.get("campaigns") else {
        panic!("malformed list response");
    };
    assert_eq!(items.len(), 3);
    for item in items {
        let handle = item.get("handle").and_then(Value::as_str).unwrap();
        let status = client
            .call("status", vec![("handle", json::s(handle))])
            .unwrap();
        assert_eq!(status.get("state").and_then(Value::as_str), Some("done"));
        assert!(status.get("grants").and_then(Value::as_u64).unwrap() > 0);
    }
    drop(daemon);
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&solo_state);
}

/// Cancellation: a cancelled campaign stops early via the admission
/// gate, reports `cancelled`, and a resubmit resumes from the journal
/// to the same final report as a never-cancelled run.
#[test]
fn cancel_stops_early_and_resumes_to_identical_report() {
    let spec = svf_spec("dijkstra", 2500, "normal");
    let state = temp_dir("cancel");
    let daemon = Daemon::spawn_tcp(&state);

    let mut c = Client::connect(&daemon.addr).unwrap();
    let resp = c.call("submit", vec![("spec", spec.clone())]).unwrap();
    let handle = resp
        .get("handle")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let sub = c
        .send("subscribe", vec![("handle", json::s(&handle))])
        .unwrap();
    c.wait_response(sub, |_| {}).unwrap();
    // Let a few records through, then cancel from a second connection.
    let mut seen = 0;
    while seen < 5 {
        let ev = c.read_event().unwrap();
        if ev.get("event").and_then(Value::as_str) == Some("record") {
            seen += 1;
        }
    }
    let mut c2 = Client::connect(&daemon.addr).unwrap();
    c2.call("cancel", vec![("handle", json::s(&handle))])
        .unwrap();
    // Drain our subscription to the done event.
    let done = loop {
        let ev = c.read_event().unwrap();
        if ev.get("event").and_then(Value::as_str) == Some("done") {
            break ev;
        }
    };
    let result = done.get("result").unwrap();
    let final_state = result.get("state").and_then(Value::as_str).unwrap();
    assert_eq!(final_state, "cancelled");
    drop(daemon);

    // Restart: the persisted spec re-attaches and the journal carries
    // the pre-cancellation prefix; the campaign completes.
    let daemon2 = Daemon::spawn_tcp(&state);
    let mut client2 = Client::connect(&daemon2.addr).unwrap();
    let resumed = client2.run_campaign(&spec, |_| {}).unwrap();
    assert_eq!(resumed.state, "done");
    assert!(resumed.replayed > 0, "cancelled prefix must replay");

    // Control for report identity.
    let control_state = temp_dir("cancel-control");
    let control = Daemon::spawn_tcp(&control_state);
    let mut client3 = Client::connect(&control.addr).unwrap();
    let control_done = client3.run_campaign(&spec, |_| {}).unwrap();
    assert_eq!(resumed.report, control_done.report);
    drop(daemon2);
    drop(control);
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&control_state);
}

/// The daemon also serves Unix-domain sockets, selected by a `unix:`
/// address prefix.
#[test]
fn unix_socket_roundtrip() {
    let state = temp_dir("unix");
    let sock = state.join("serve.sock");
    let addr = format!("unix:{}", sock.display());
    let daemon = Daemon::spawn(&state, &["--listen", &addr, "--threads", "1"]);
    assert_eq!(daemon.addr, addr);
    // The endpoint file mirrors the bound address.
    let endpoint = std::fs::read_to_string(state.join("endpoint")).unwrap();
    assert_eq!(endpoint.trim(), addr);
    let mut client = Client::connect(&addr).unwrap();
    let mut records = Vec::new();
    let done = client
        .run_campaign(&svf_spec("qsort", 25, "high"), |r| records.push(r.clone()))
        .unwrap();
    assert_eq!(done.state, "done");
    assert_eq!(records.len(), 25);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&state);
}

/// Regression (unwrap audit): a daemon that cannot bind its socket must
/// exit nonzero with an error naming the endpoint — not panic.
#[test]
fn socket_bind_failure_exits_nonzero_with_named_endpoint() {
    // Occupy a port, then ask the daemon to bind it.
    let blocker = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = blocker.local_addr().unwrap().to_string();
    let state = temp_dir("bind-fail");
    let out = Command::new(bin())
        .arg("serve")
        .args(["--state", state.to_str().unwrap(), "--listen", &addr])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bind") && stderr.contains(&addr),
        "stderr must name the endpoint: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "must fail cleanly: {stderr}");

    // Same for an unbindable Unix socket path.
    let bad = format!("unix:{}/no-such-dir/serve.sock", state.display());
    let out = Command::new(bin())
        .arg("serve")
        .args(["--state", state.to_str().unwrap(), "--listen", &bad])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bind unix socket") && stderr.contains("no-such-dir"),
        "stderr must name the socket path: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&state);
}

/// Graceful shutdown: the `shutdown` verb acknowledges, flushes, and
/// exits the daemon with status 0 (what CI's smoke step relies on).
#[test]
fn shutdown_verb_exits_cleanly() {
    let state = temp_dir("shutdown");
    let mut daemon = Daemon::spawn_tcp(&state);
    let mut client = Client::connect(&daemon.addr).unwrap();
    let resp = client.call("shutdown", vec![]).unwrap();
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(st) = daemon.child.try_wait().unwrap() {
            break st;
        }
        assert!(Instant::now() < deadline, "daemon did not exit on shutdown");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "shutdown exit must be 0, got {status:?}");
    // A subsequent read on the dead connection sees EOF, not a hang.
    let mut probe = [0u8; 1];
    let mut conn = match std::net::TcpStream::connect(&daemon.addr) {
        Ok(c) => c,
        Err(_) => {
            let _ = std::fs::remove_dir_all(&state);
            return; // listener already gone — equally fine
        }
    };
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = conn.read(&mut probe);
    let _ = std::fs::remove_dir_all(&state);
}
