//! Exactness of equivalence-class pruning: the pruned campaign must be a
//! pure optimisation, producing per-site records — and therefore AVF
//! tallies and FPM distributions — bit-identical to the full campaign's,
//! across workloads, core models, thread counts, and a kill-and-resume
//! of the pruned campaign itself. This is the test the speedup bench
//! (`ablation_pruning_speedup`) leans on: any wall-clock win it reports
//! is only meaningful because these assertions hold.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use vulnstack_core::{JournalError, JournalOpts, ResumeMode, RunPolicy};
use vulnstack_gefin::{
    avf_campaign, avf_campaign_models, avf_campaign_planned, avf_campaign_resumable_planned,
    per_model_tallies, run_one_model, temporal_campaign, temporal_campaign_pruned, InjectionPlan,
    Prepared,
};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::{CoreModel, FaultModel};
use vulnstack_workloads::WorkloadId;

const N: usize = 32;
const SEED: u64 = 17;
const STRUCTURE: HwStructure = HwStructure::RegisterFile;

fn prep_crc32_a72() -> &'static Prepared {
    static PREP: OnceLock<Prepared> = OnceLock::new();
    PREP.get_or_init(|| {
        let w = WorkloadId::Crc32.build();
        Prepared::new(&w, CoreModel::A72).expect("prepare crc32/A72")
    })
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulnstack-prune-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn opts<'a>(path: &'a Path, mode: ResumeMode) -> JournalOpts<'a> {
    JournalOpts {
        path,
        mode,
        policy: RunPolicy::default(),
        workload: "crc32",
    }
}

/// Sorted journal body lines (header excluded): completion order varies
/// with the thread count, the record *set* must not.
fn sorted_entries(path: &Path) -> Vec<String> {
    let content = std::fs::read_to_string(path).unwrap();
    let mut lines: Vec<String> = content.lines().skip(1).map(String::from).collect();
    lines.sort();
    lines
}

/// Truncates a completed *pruned* journal back to its header, its
/// `class-table` metadata line, and `keep` record lines, then appends a
/// torn half-record — the on-disk state a SIGKILL mid-append leaves.
fn interrupt_pruned_journal(full: &Path, target: &Path, keep: usize) {
    let content = std::fs::read_to_string(full).unwrap();
    assert!(
        content.lines().nth(1).is_some_and(|l| l.starts_with("M|")),
        "pruned journal must carry its class-table metadata line"
    );
    let kept: Vec<&str> = content.lines().take(2 + keep).collect();
    let mut torn = format!("{}\n", kept.join("\n"));
    torn.push_str("R|999|half-written");
    std::fs::write(target, torn).unwrap();
}

#[test]
fn pruned_campaign_is_bit_identical_across_workloads_models_and_threads() {
    for (wid, model) in [
        (WorkloadId::Qsort, CoreModel::A9),
        (WorkloadId::Qsort, CoreModel::A72),
        (WorkloadId::Crc32, CoreModel::A9),
        (WorkloadId::Crc32, CoreModel::A72),
    ] {
        let w = wid.build();
        let prep = Prepared::new(&w, model).unwrap();
        let full = avf_campaign(&prep, STRUCTURE, N, SEED, 4);
        for threads in [1, 4] {
            let (pruned, stats) = avf_campaign_planned(
                &prep,
                STRUCTURE,
                &InjectionPlan::Pruned { n: N, seed: SEED },
                threads,
                None,
            );
            let label = format!("{}/{} threads={threads}", wid.name(), model.name());
            assert_eq!(
                pruned.records, full.records,
                "{label}: pruned records must be bit-identical to the full campaign"
            );
            assert_eq!(pruned.tally, full.tally, "{label}");
            // FpmDist carries no equality; record equality already pins
            // the distribution, spot-check the derived HVF too.
            assert!((pruned.hvf() - full.hvf()).abs() < 1e-12, "{label}");
            let stats = stats.expect("pruned plan reports stats");
            assert_eq!(stats.sites, N as u64, "{label}");
            assert!(
                stats.sites_pruned() > 0,
                "{label}: a register-file campaign must prune something: {stats:?}"
            );
        }
    }
}

/// The model-aware pruner must stay a pure optimisation for every fault
/// model: the pruned campaign's records are bit-identical to running
/// each drawn `(cycle, bit, model)` site individually. `bit-flip` alone
/// is covered by the legacy equivalence test above; here the other
/// models and the mixed set get the same guarantee. The per-model dead
/// arguments differ (a next-access write kills a transient flip but not
/// a stuck-at; instr-skip classes key on the next dispatch), so each
/// set exercises a different proof.
#[test]
fn model_aware_pruning_is_bit_identical_per_model_and_mixed() {
    let prep = prep_crc32_a72();
    let n = 10;
    let sets: [&[FaultModel]; 4] = [
        &[FaultModel::ByteCorrupt],
        &[FaultModel::InstrSkip],
        &[FaultModel::StuckAt],
        &FaultModel::ALL,
    ];
    for models in sets {
        let label: Vec<&str> = models.iter().map(|m| m.name()).collect();
        let label = label.join("+");
        let (full, none) = avf_campaign_models(
            prep,
            STRUCTURE,
            &InjectionPlan::Sampled { n, seed: SEED },
            models,
            4,
            None,
        );
        assert!(none.is_none(), "{label}: sampled plans report no stats");
        let (pruned, stats) = avf_campaign_models(
            prep,
            STRUCTURE,
            &InjectionPlan::Pruned { n, seed: SEED },
            models,
            4,
            None,
        );
        assert_eq!(
            pruned.records, full.records,
            "{label}: pruned records must be bit-identical to individual runs"
        );
        assert_eq!(pruned.tally, full.tally, "{label}");
        let stats = stats.expect("pruned plan reports stats");
        assert_eq!(stats.sites, n as u64, "{label}");
    }
}

/// An ARMORY-style exhaustive (site, model) sweep completes under
/// pruning, covers every pair exactly once at the pinned cycle, and the
/// pruner's verdicts spot-check against individual injections.
#[test]
fn exhaustive_model_sweep_completes_under_pruning() {
    let prep = prep_crc32_a72();
    let cycle = prep.golden.cycles / 2;
    // Byte-corrupt (site space bits/8) plus the single-site instr-skip:
    // a full multi-model product small enough for a debug-build test.
    let models = [FaultModel::ByteCorrupt, FaultModel::InstrSkip];
    let (r, stats) = avf_campaign_models(
        prep,
        STRUCTURE,
        &InjectionPlan::Exhaustive { cycle },
        &models,
        4,
        None,
    );
    let expected: u64 = models.iter().map(|m| m.sites(STRUCTURE, &prep.cfg)).sum();
    let stats = stats.expect("exhaustive plans execute through the pruner");
    assert_eq!(stats.sites, expected);
    assert_eq!(r.records.len() as u64, expected);
    assert!(r.records.iter().all(|rec| rec.cycle == cycle));
    assert!(
        stats.dead_masked > 0,
        "an exhaustive sweep must prune dead sites: {stats:?}"
    );
    // Every requested model appears in the tallies, each covering its
    // whole site space.
    let tallies = per_model_tallies(&r.records);
    assert_eq!(tallies.len(), models.len());
    for (m, t, _) in &tallies {
        assert_eq!(t.total(), m.sites(STRUCTURE, &prep.cfg), "{m:?}");
    }
    // Spot-check exactness against individual injections at both ends
    // and the middle of the site space.
    for idx in [0, r.records.len() / 2, r.records.len() - 1] {
        let rec = r.records[idx];
        let site = vulnstack_gefin::ModelSite {
            cycle: rec.cycle,
            bit: rec.bit,
            model: rec.model,
        };
        assert_eq!(
            run_one_model(prep, STRUCTURE, site),
            rec,
            "site {idx} must match its individual run"
        );
    }
}

#[test]
fn pruned_temporal_sweep_matches_full_sweep() {
    let prep = prep_crc32_a72();
    let full = temporal_campaign(prep, STRUCTURE, 4, 8, SEED, 4);
    for threads in [1, 4] {
        let (pruned, stats) = temporal_campaign_pruned(prep, STRUCTURE, 4, 8, SEED, threads, None);
        assert_eq!(pruned.tallies, full.tallies, "threads={threads}");
        assert_eq!(pruned.bounds, full.bounds);
        assert_eq!(stats.sites, 32);
    }
}

#[test]
fn pruned_kill_and_resume_is_bit_identical() {
    let prep = prep_crc32_a72();
    let plan = InjectionPlan::Pruned { n: N, seed: SEED };
    let baseline = avf_campaign(prep, STRUCTURE, N, SEED, 4);

    // Uninterrupted pruned journaled run matches the plain full campaign.
    let full = tmp("pruned-full.journal");
    let _ = std::fs::remove_file(&full);
    let (out, stats) = avf_campaign_resumable_planned(
        prep,
        STRUCTURE,
        &plan,
        4,
        &opts(&full, ResumeMode::Fresh),
        None,
    )
    .unwrap();
    assert_eq!(out.result.records, baseline.records);
    assert_eq!(out.stats.executed, N);
    assert!(out.quarantined.is_empty());
    assert!(stats.expect("pruned stats").sites_pruned() > 0);

    // Kill mid-campaign, resume at different thread counts: identical
    // records, identical journal contents, and the class-table metadata
    // must agree (the resumed run rebuilds the table and verifies).
    for threads in [1, 4] {
        let path = tmp(&format!("pruned-killed-t{threads}.journal"));
        interrupt_pruned_journal(&full, &path, 9);
        let (resumed, _) = avf_campaign_resumable_planned(
            prep,
            STRUCTURE,
            &plan,
            threads,
            &opts(&path, ResumeMode::ResumeRequired),
            None,
        )
        .unwrap();
        assert_eq!(
            resumed.result.records, baseline.records,
            "threads={threads}: resumed pruned records must be bit-identical"
        );
        assert_eq!(resumed.stats.replayed, 9, "threads={threads}");
        assert_eq!(resumed.stats.executed, N - 9, "threads={threads}");
        assert!(resumed.stats.truncated_bytes > 0);
        assert_eq!(
            sorted_entries(&path),
            sorted_entries(&full),
            "threads={threads}: completed journals must hold the same records"
        );
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_file(&full);
}

#[test]
fn pruned_resume_refuses_a_damaged_class_table() {
    let prep = prep_crc32_a72();
    let plan = InjectionPlan::Pruned { n: N, seed: SEED };
    let path = tmp("pruned-damaged-meta.journal");
    let _ = std::fs::remove_file(&path);
    avf_campaign_resumable_planned(
        prep,
        STRUCTURE,
        &plan,
        4,
        &opts(&path, ResumeMode::Fresh),
        None,
    )
    .unwrap();

    // Corrupt one byte of the class-table metadata payload. The line
    // checksum no longer verifies, the journal truncates there, and the
    // resume must refuse — naming the digest it expected — rather than
    // silently re-prune over unverifiable records.
    let content = std::fs::read_to_string(&path).unwrap();
    let damaged: Vec<String> = content
        .lines()
        .map(|l| {
            if let Some(rest) = l.strip_prefix("M|class-table|fnv=") {
                let flipped =
                    rest.replacen(&rest[..1], if &rest[..1] == "0" { "1" } else { "0" }, 1);
                format!("M|class-table|fnv={flipped}")
            } else {
                l.to_string()
            }
        })
        .collect();
    std::fs::write(&path, format!("{}\n", damaged.join("\n"))).unwrap();

    let err = avf_campaign_resumable_planned(
        prep,
        STRUCTURE,
        &plan,
        4,
        &opts(&path, ResumeMode::ResumeRequired),
        None,
    )
    .unwrap_err();
    match err {
        JournalError::MetaMismatch {
            key,
            expected,
            found,
            ..
        } => {
            assert_eq!(key, "class-table");
            assert!(expected.starts_with("fnv="));
            assert_eq!(
                found, None,
                "a damaged metadata line must truncate, not parse"
            );
        }
        other => panic!("expected a class-table metadata mismatch, got {other}"),
    }
    let _ = std::fs::remove_file(&path);
}
