//! Targeted register-pressure tests: programs with far more simultaneously
//! live values than VA32's six allocatable registers must spill and still
//! compute correctly on every engine — the compiler path most likely to
//! harbour subtle bugs.

use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_isa::{Instr, Isa, Op};
use vulnstack_kernel::SystemImage;
use vulnstack_microarch::{CoreModel, FuncCore, OooCore, RunStatus};
use vulnstack_vir::{Module, ModuleBuilder, VReg};

/// Builds a program holding `n` values live across a loop, then folding
/// them into a checksum.
fn pressure_module(n: u32) -> (Module, i32) {
    let mut mb = ModuleBuilder::new("pressure");
    let mut f = mb.function("main", 0);
    let vals: Vec<VReg> = (0..n)
        .map(|i| {
            let v = f.fresh();
            f.set_c(v, (i as i32 + 1) * 3);
            v
        })
        .collect();
    // A loop that touches every value each iteration keeps them all live.
    f.for_range(0, 10, |f, _i| {
        for &v in &vals {
            let x = f.add(v, 1);
            f.set(v, x);
        }
    });
    // checksum = sum of (3(i+1) + 10) = 3*n(n+1)/2 + 10n
    let mut host = 0i64;
    for i in 0..n as i64 {
        host += (i + 1) * 3 + 10;
    }
    let acc = f.fresh();
    f.set_c(acc, 0);
    for &v in &vals {
        let s = f.add(acc, v);
        f.set(acc, s);
    }
    f.sys_exit(acc);
    f.ret(None);
    mb.finish_function(f);
    (mb.finish().unwrap(), host as i32)
}

#[test]
fn heavy_pressure_spills_and_stays_correct() {
    for n in [4u32, 10, 24, 48] {
        let (m, want) = pressure_module(n);
        for isa in [Isa::Va32, Isa::Va64] {
            let c = compile(&m, isa, &CompileOpts::default()).unwrap();
            let img = SystemImage::build(&c, &[]).unwrap();
            let out = FuncCore::new(&img).run(50_000_000);
            assert_eq!(out.status, RunStatus::Exited(want), "n={n} {isa}");
        }
    }
}

#[test]
fn va32_actually_spills_under_pressure() {
    let (m, _) = pressure_module(24);
    let c = compile(&m, Isa::Va32, &CompileOpts::default()).unwrap();
    // Spill traffic shows as LW/SW against the stack pointer with offsets
    // beyond the (empty) slot area.
    let sp = Isa::Va32.sp();
    let spills = c
        .text
        .iter()
        .filter_map(|&w| Instr::decode(w, Isa::Va32).ok())
        .filter(|i| matches!(i.op, Op::Lw | Op::Sw) && i.rs1 == sp)
        .count();
    assert!(
        spills > 20,
        "expected heavy spill traffic, found {spills} sp-relative accesses"
    );

    // VA64 has three times the registers: materially fewer spill accesses.
    let c64 = compile(&m, Isa::Va64, &CompileOpts::default()).unwrap();
    let sp64 = Isa::Va64.sp();
    let spills64 = c64
        .text
        .iter()
        .filter_map(|&w| Instr::decode(w, Isa::Va64).ok())
        .filter(|i| matches!(i.op, Op::Lw | Op::Sw | Op::Ld | Op::Sd) && i.rs1 == sp64)
        .count();
    // The count includes prologue/epilogue callee-saved traffic (VA64
    // saves more callee registers), so compare totals rather than a
    // strict ratio.
    assert!(
        spills64 < spills,
        "va64 ({spills64}) should spill less than va32 ({spills})"
    );
}

#[test]
fn pressure_code_is_stable_on_the_ooo_core() {
    let (m, want) = pressure_module(48);
    let c = compile(&m, Isa::Va32, &CompileOpts::default()).unwrap();
    let img = SystemImage::build(&c, &[]).unwrap();
    let out = OooCore::new(&CoreModel::A9.config(), &img).run(100_000_000);
    assert_eq!(out.sim.status, RunStatus::Exited(want));
}
