//! Kill-and-resume equivalence for journaled campaigns.
//!
//! The durability contract of `vulnstack_core::journal`: a campaign
//! interrupted at an arbitrary point — mid-record, even — and resumed at
//! a *different* thread count produces records bit-identical to an
//! uninterrupted run. Verified here for both injection engines (gefin
//! AVF and llfi SVF) by truncating a completed journal back to a torn
//! prefix, resuming, and comparing records and journal contents; plus
//! the fingerprint refusal and panic-quarantine guarantees.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use vulnstack_core::journal::{fnv1a64, Journal};
use vulnstack_core::{
    FaultEffect, Fingerprint, JournalError, JournalOpts, ResumableCampaign, ResumeMode, RunPolicy,
    StreamOpts,
};
use vulnstack_gefin::{
    avf_campaign, avf_campaign_models, avf_campaign_models_resumable, avf_campaign_models_streamed,
    avf_campaign_resumable, decode_record, draw_sites, encode_record, InjectionPlan,
    InjectionRecord, Prepared,
};
use vulnstack_llfi::{svf_campaign, svf_campaign_resumable, svf_campaign_streamed};
use vulnstack_microarch::ooo::{Fpm, HwStructure};
use vulnstack_microarch::{CoreModel, FaultModel};
use vulnstack_workloads::{Workload, WorkloadId};

const N: usize = 24;
const SEED: u64 = 11;
const STRUCTURE: HwStructure = HwStructure::RegisterFile;

fn prep() -> &'static Prepared {
    static PREP: OnceLock<Prepared> = OnceLock::new();
    PREP.get_or_init(|| {
        let w = WorkloadId::Crc32.build();
        Prepared::new(&w, CoreModel::A72).expect("prepare crc32/A72")
    })
}

fn crc32() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| WorkloadId::Crc32.build())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulnstack-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn opts<'a>(path: &'a Path, mode: ResumeMode) -> JournalOpts<'a> {
    JournalOpts {
        path,
        mode,
        policy: RunPolicy::default(),
        workload: "crc32",
    }
}

/// The journal's entry lines, sorted (workers append in completion
/// order, which varies with the thread count; the *set* of records must
/// not).
fn sorted_entries(path: &Path) -> Vec<String> {
    let content = std::fs::read_to_string(path).unwrap();
    let mut lines: Vec<String> = content.lines().skip(1).map(String::from).collect();
    lines.sort();
    lines
}

/// Truncates a completed journal back to its header plus `keep` entry
/// lines, then appends a torn half-record with no terminating newline —
/// the on-disk state a SIGKILL mid-append leaves behind.
fn interrupt_journal(full: &Path, target: &Path, keep: usize) {
    let content = std::fs::read_to_string(full).unwrap();
    let kept: Vec<&str> = content.lines().take(1 + keep).collect();
    let mut torn = format!("{}\n", kept.join("\n"));
    torn.push_str("R|999|half-written");
    std::fs::write(target, torn).unwrap();
}

#[test]
fn gefin_kill_and_resume_is_bit_identical_across_thread_counts() {
    let prep = prep();
    let baseline = avf_campaign(prep, STRUCTURE, N, SEED, 4);

    // Uninterrupted journaled run: records match the plain campaign.
    let full = tmp("gefin-full.journal");
    let _ = std::fs::remove_file(&full);
    let out = avf_campaign_resumable(
        prep,
        STRUCTURE,
        N,
        SEED,
        4,
        &opts(&full, ResumeMode::Fresh),
        None,
    )
    .unwrap();
    assert_eq!(out.result.records, baseline.records);
    assert_eq!(out.stats.executed, N);
    assert!(out.quarantined.is_empty());

    // Interrupt after 9 records and resume at several thread counts:
    // every resume must reconstruct the identical record vector AND the
    // identical journal contents.
    for threads in [2, 4] {
        let path = tmp(&format!("gefin-killed-t{threads}.journal"));
        interrupt_journal(&full, &path, 9);
        let resumed = avf_campaign_resumable(
            prep,
            STRUCTURE,
            N,
            SEED,
            threads,
            &opts(&path, ResumeMode::ResumeRequired),
            None,
        )
        .unwrap();
        assert_eq!(
            resumed.result.records, baseline.records,
            "threads={threads}: resumed records must be bit-identical"
        );
        assert_eq!(resumed.stats.replayed, 9, "threads={threads}");
        assert_eq!(resumed.stats.executed, N - 9, "threads={threads}");
        assert!(
            resumed.stats.truncated_bytes > 0,
            "the torn tail must be detected and truncated"
        );
        assert_eq!(
            sorted_entries(&path),
            sorted_entries(&full),
            "threads={threads}: completed journals must hold the same records"
        );
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_file(&full);
}

#[test]
fn gefin_resume_refuses_a_mismatched_fingerprint() {
    let prep = prep();
    let path = tmp("gefin-mismatch.journal");
    let _ = std::fs::remove_file(&path);
    avf_campaign_resumable(
        prep,
        STRUCTURE,
        N,
        SEED,
        2,
        &opts(&path, ResumeMode::Fresh),
        None,
    )
    .unwrap();
    // Same journal, different seed: a different campaign entirely.
    let err = avf_campaign_resumable(
        prep,
        STRUCTURE,
        N,
        SEED + 1,
        2,
        &opts(&path, ResumeMode::ResumeRequired),
        None,
    )
    .unwrap_err();
    match err {
        JournalError::Mismatch {
            expected, found, ..
        } => {
            assert!(expected.contains(&format!("seed={}", SEED + 1)));
            assert!(found.contains(&format!("seed={SEED}")));
        }
        other => panic!("expected a fingerprint mismatch, got {other}"),
    }
    // Resume against a missing journal is refused too.
    let missing = tmp("gefin-missing.journal");
    let _ = std::fs::remove_file(&missing);
    assert!(matches!(
        avf_campaign_resumable(
            prep,
            STRUCTURE,
            N,
            SEED,
            2,
            &opts(&missing, ResumeMode::ResumeRequired),
            None,
        ),
        Err(JournalError::Missing(_))
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn llfi_kill_and_resume_is_bit_identical_across_thread_counts() {
    let w = crc32();
    let n = 30;
    let baseline = svf_campaign(&w.module, &w.input, &w.expected_output, n, SEED, 4);

    let full = tmp("llfi-full.journal");
    let _ = std::fs::remove_file(&full);
    let out = svf_campaign_resumable(
        &w.module,
        &w.input,
        &w.expected_output,
        n,
        SEED,
        4,
        &opts(&full, ResumeMode::Fresh),
        None,
    )
    .unwrap();
    assert_eq!(out.tally, baseline);
    assert_eq!(out.stats.executed, n);

    for threads in [2, 4] {
        let path = tmp(&format!("llfi-killed-t{threads}.journal"));
        interrupt_journal(&full, &path, 11);
        let resumed = svf_campaign_resumable(
            &w.module,
            &w.input,
            &w.expected_output,
            n,
            SEED,
            threads,
            &opts(&path, ResumeMode::ResumeRequired),
            None,
        )
        .unwrap();
        assert_eq!(resumed.tally, baseline, "threads={threads}");
        assert_eq!(resumed.stats.replayed, 11);
        assert_eq!(resumed.stats.executed, n - 11);
        assert!(resumed.stats.truncated_bytes > 0);
        assert_eq!(
            sorted_entries(&path),
            sorted_entries(&full),
            "threads={threads}: completed journals must hold the same records"
        );
        let _ = std::fs::remove_file(&path);
    }

    // A mismatched sample count is refused (records from a shorter
    // campaign must never seed a longer one).
    let err = svf_campaign_resumable(
        &w.module,
        &w.input,
        &w.expected_output,
        n + 1,
        SEED,
        2,
        &opts(&full, ResumeMode::ResumeRequired),
        None,
    )
    .unwrap_err();
    assert!(matches!(err, JournalError::Mismatch { .. }), "{err}");
    let _ = std::fs::remove_file(&full);
}

/// Journal codec for [`InjectionRecord`] mirroring the engine's own
/// (`cycle,bit,effect,fpm,fpm_cycle,model`) — the integration test
/// drives the core orchestrator directly so it can poison one site.
fn encode(r: &InjectionRecord) -> String {
    format!(
        "{},{},{},{},{},{}",
        r.cycle,
        r.bit,
        r.effect.name(),
        r.fpm.map_or("-", Fpm::name),
        r.fpm_cycle
            .map_or_else(|| "-".to_string(), |c| c.to_string()),
        r.model.name(),
    )
}

fn decode(s: &str) -> Option<InjectionRecord> {
    let mut it = s.split(',');
    let cycle = it.next()?.parse().ok()?;
    let bit = it.next()?.parse().ok()?;
    let effect = FaultEffect::from_name(it.next()?)?;
    let fpm = match it.next()? {
        "-" => None,
        name => Some(Fpm::from_name(name)?),
    };
    let fpm_cycle = match it.next()? {
        "-" => None,
        c => Some(c.parse().ok()?),
    };
    let model = FaultModel::from_name(it.next()?)?;
    Some(InjectionRecord {
        cycle,
        bit,
        model,
        effect,
        fpm,
        fpm_cycle,
    })
}

#[test]
fn a_panicking_injection_is_quarantined_and_the_campaign_completes() {
    let prep = prep();
    let sites = draw_sites(prep, STRUCTURE, N, SEED);
    let order: Vec<usize> = (0..sites.len()).collect();
    let baseline = avf_campaign(prep, STRUCTURE, N, SEED, 4);
    let path = tmp("gefin-poison.journal");
    let _ = std::fs::remove_file(&path);
    let fingerprint = Fingerprint {
        engine: "test-poisoned-avf".to_string(),
        workload: "crc32".to_string(),
        config: "A72".to_string(),
        structure: STRUCTURE.name().to_string(),
        seed: SEED,
        samples: N as u64,
        params: String::new(),
        version: 1,
    };
    let campaign = ResumableCampaign {
        path: &path,
        fingerprint,
        mode: ResumeMode::Fresh,
        items: &sites,
        order: &order,
        threads: 4,
        policy: RunPolicy { max_retries: 1 },
        meta: &[],
    };
    let poisoned = 3usize;
    let out = campaign
        .run(
            |i, &(cycle, bit)| {
                // One deliberately poisoned injection among real runs.
                assert!(i != poisoned, "injector blew up on site {i}");
                vulnstack_gefin::avf::run_one(prep, STRUCTURE, cycle, bit)
            },
            encode,
            decode,
            None,
        )
        .unwrap();

    // The campaign completed: every healthy site carries its real
    // record, the poisoned one a quarantine marker.
    assert_eq!(out.outcomes.len(), N);
    let quarantined = out.quarantined();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].index, poisoned);
    assert_eq!(quarantined[0].attempts, 2, "1 try + 1 retry");
    assert!(quarantined[0].message.contains("blew up on site 3"));
    for (i, outcome) in out.outcomes.iter().enumerate() {
        if i != poisoned {
            assert_eq!(outcome.done(), Some(&baseline.records[i]), "site {i}");
        }
    }

    // Resuming replays the quarantine durably instead of re-running the
    // poison site: zero executions, same outcome.
    let resumed = ResumableCampaign {
        mode: ResumeMode::ResumeRequired,
        ..campaign
    }
    .run(
        |_, &(cycle, bit)| vulnstack_gefin::avf::run_one(prep, STRUCTURE, cycle, bit),
        encode,
        decode,
        None,
    )
    .unwrap();
    assert_eq!(resumed.stats.executed, 0);
    assert_eq!(resumed.stats.replayed, N);
    assert_eq!(resumed.stats.quarantined, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mixed_model_kill_and_resume_is_bit_identical() {
    let prep = prep();
    let plan = InjectionPlan::Pruned { n: N, seed: SEED };
    let (baseline, _) = avf_campaign_models(prep, STRUCTURE, &plan, &FaultModel::ALL, 4, None);
    // The drawn campaign really mixes models — otherwise this test
    // degenerates to the single-model one above.
    let models_seen: std::collections::BTreeSet<&str> =
        baseline.records.iter().map(|r| r.model.name()).collect();
    assert!(
        models_seen.len() > 1,
        "campaign must span several models, got {models_seen:?}"
    );

    let full = tmp("gefin-models-full.journal");
    let _ = std::fs::remove_file(&full);
    let (out, _) = avf_campaign_models_resumable(
        prep,
        STRUCTURE,
        &plan,
        &FaultModel::ALL,
        4,
        &opts(&full, ResumeMode::Fresh),
        None,
    )
    .unwrap();
    assert_eq!(out.result.records, baseline.records);
    assert_eq!(out.stats.executed, N);

    // Kill after 7 settled sites, resume at a different thread count:
    // the record vector and the journal must come back bit-identical,
    // with every model decoded through the journal codec. The pruned
    // journal's first entry line is the class-table metadata record, so
    // keeping 8 lines keeps 7 site records.
    for threads in [2, 4] {
        let path = tmp(&format!("gefin-models-killed-t{threads}.journal"));
        interrupt_journal(&full, &path, 8);
        let (resumed, _) = avf_campaign_models_resumable(
            prep,
            STRUCTURE,
            &plan,
            &FaultModel::ALL,
            threads,
            &opts(&path, ResumeMode::ResumeRequired),
            None,
        )
        .unwrap();
        assert_eq!(
            resumed.result.records, baseline.records,
            "threads={threads}: resumed mixed-model records must be bit-identical"
        );
        assert_eq!(resumed.stats.replayed, 7, "threads={threads}");
        assert_eq!(resumed.stats.executed, N - 7, "threads={threads}");
        assert!(resumed.stats.truncated_bytes > 0);
        assert_eq!(
            sorted_entries(&path),
            sorted_entries(&full),
            "threads={threads}: completed journals must hold the same records"
        );
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_file(&full);
}

#[test]
fn a_changed_model_set_is_refused_on_resume() {
    let prep = prep();
    let plan = InjectionPlan::Pruned { n: N, seed: SEED };
    let path = tmp("gefin-models-mismatch.journal");
    let _ = std::fs::remove_file(&path);
    avf_campaign_models_resumable(
        prep,
        STRUCTURE,
        &plan,
        &FaultModel::ALL,
        2,
        &opts(&path, ResumeMode::Fresh),
        None,
    )
    .unwrap();
    // Same plan, same seed, smaller model set: different site space —
    // the fingerprint must refuse, never silently mix campaigns.
    let err = avf_campaign_models_resumable(
        prep,
        STRUCTURE,
        &plan,
        &[FaultModel::BitFlip, FaultModel::StuckAt],
        2,
        &opts(&path, ResumeMode::ResumeRequired),
        None,
    )
    .unwrap_err();
    match err {
        JournalError::Mismatch {
            expected, found, ..
        } => {
            assert!(expected.contains("models=bit-flip+stuck-at"), "{expected}");
            assert!(
                found.contains("models=bit-flip+byte-corrupt+instr-skip+stuck-at"),
                "{found}"
            );
        }
        other => panic!("expected a fingerprint mismatch, got {other}"),
    }
    let _ = std::fs::remove_file(&path);
}

/// Fuzzes the engine's journal codec over every model × effect × FPM
/// combination: encode/decode must round-trip exactly, and the mirror
/// codec in this file must agree byte-for-byte with the engine's.
#[test]
fn record_codec_round_trips_over_every_model() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    for i in 0..4096usize {
        let model = FaultModel::ALL[i % FaultModel::ALL.len()];
        let effect = FaultEffect::ALL[rng.gen_range(0usize..4)];
        let fpm = match rng.gen_range(0usize..5) {
            0 => None,
            k => Some(Fpm::ALL[k - 1]),
        };
        let r = InjectionRecord {
            cycle: rng.gen_range(0u64..=u64::MAX - 1),
            bit: rng.gen_range(0u64..1 << 20),
            model,
            effect,
            fpm,
            fpm_cycle: fpm.map(|_| rng.gen_range(0u64..=u64::MAX - 1)),
        };
        let line = encode_record(&r);
        assert_eq!(decode_record(&line), Some(r), "engine codec: {line}");
        assert_eq!(encode(&r), line, "mirror codec must match the engine");
        assert_eq!(decode(&line), Some(r), "mirror decode: {line}");
    }
    // Truncated and over-long payloads are corruption, not records.
    let r = InjectionRecord {
        cycle: 5,
        bit: 6,
        model: FaultModel::StuckAt,
        effect: FaultEffect::Sdc,
        fpm: Some(Fpm::Wd),
        fpm_cycle: Some(9),
    };
    let line = encode_record(&r);
    assert_eq!(decode_record(line.rsplit_once(',').unwrap().0), None);
    assert_eq!(decode_record(&format!("{line},extra")), None);
    assert_eq!(decode_record("5,6,Sdc,WD,9,gamma-ray"), None);
}

/// The streamed engines keep the legacy journal fingerprints and record
/// encodings bit-for-bit: a journal written by the streaming sink is
/// byte-interchangeable with a legacy-written one (header included), so
/// either path can kill-and-resume the other's campaigns.
#[test]
fn streamed_journals_are_byte_interchangeable_with_legacy_journals() {
    let prep = prep();
    let plan = InjectionPlan::Sampled { n: N, seed: SEED };

    // Legacy writer, then the streamed engine writes the same campaign.
    let legacy_path = tmp("interop-legacy.journal");
    let _ = std::fs::remove_file(&legacy_path);
    let legacy = avf_campaign_resumable(
        prep,
        STRUCTURE,
        N,
        SEED,
        4,
        &opts(&legacy_path, ResumeMode::Fresh),
        None,
    )
    .unwrap();
    let streamed_path = tmp("interop-streamed.journal");
    let _ = std::fs::remove_file(&streamed_path);
    let (out, _) = avf_campaign_models_streamed(
        prep,
        STRUCTURE,
        &plan,
        &[FaultModel::BitFlip],
        4,
        Some(&opts(&streamed_path, ResumeMode::Fresh)),
        StreamOpts::from_env(),
        None,
    )
    .unwrap();
    assert_eq!(out.tally, legacy.result.tally);
    assert_eq!(out.stats.executed, N);

    // Same header line (the fingerprint), same sorted entry set.
    let header = |p: &Path| {
        std::fs::read_to_string(p)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_string()
    };
    assert_eq!(
        header(&streamed_path),
        header(&legacy_path),
        "streamed and legacy fingerprints must be identical"
    );
    assert_eq!(sorted_entries(&streamed_path), sorted_entries(&legacy_path));

    // Cross-resume both ways: each engine replays the other's journal
    // fully, executing nothing.
    let resumed_legacy = avf_campaign_resumable(
        prep,
        STRUCTURE,
        N,
        SEED,
        2,
        &opts(&streamed_path, ResumeMode::ResumeRequired),
        None,
    )
    .unwrap();
    assert_eq!(resumed_legacy.stats.replayed, N);
    assert_eq!(resumed_legacy.stats.executed, 0);
    assert_eq!(resumed_legacy.result.records, legacy.result.records);
    let (resumed_streamed, _) = avf_campaign_models_streamed(
        prep,
        STRUCTURE,
        &plan,
        &[FaultModel::BitFlip],
        2,
        Some(&opts(&legacy_path, ResumeMode::ResumeRequired)),
        StreamOpts::from_env(),
        None,
    )
    .unwrap();
    assert_eq!(resumed_streamed.stats.replayed, N);
    assert_eq!(resumed_streamed.stats.executed, 0);
    assert_eq!(resumed_streamed.tally, legacy.result.tally);
    let _ = std::fs::remove_file(&legacy_path);
    let _ = std::fs::remove_file(&streamed_path);
}

/// Kill-and-resume through the streaming sink: interrupting a streamed
/// journal mid-campaign (torn tail included) and resuming — through a
/// capacity-1 channel, maximum backpressure — reproduces the
/// uninterrupted journal exactly.
#[test]
fn streamed_kill_and_resume_reproduces_the_uninterrupted_journal() {
    let prep = prep();
    let plan = InjectionPlan::Sampled { n: N, seed: SEED };
    let baseline = avf_campaign(prep, STRUCTURE, N, SEED, 4);

    let full = tmp("streamed-full.journal");
    let _ = std::fs::remove_file(&full);
    let (out, _) = avf_campaign_models_streamed(
        prep,
        STRUCTURE,
        &plan,
        &[FaultModel::BitFlip],
        4,
        Some(&opts(&full, ResumeMode::Fresh)),
        StreamOpts::from_env(),
        None,
    )
    .unwrap();
    assert_eq!(out.tally, baseline.tally);

    for threads in [2, 4] {
        let path = tmp(&format!("streamed-killed-t{threads}.journal"));
        interrupt_journal(&full, &path, 9);
        let (resumed, _) = avf_campaign_models_streamed(
            prep,
            STRUCTURE,
            &plan,
            &[FaultModel::BitFlip],
            threads,
            Some(&opts(&path, ResumeMode::ResumeRequired)),
            StreamOpts {
                channel_cap: 1,
                spill: None,
                gate: None,
                tee: None,
            },
            None,
        )
        .unwrap();
        assert_eq!(resumed.stats.replayed, 9, "threads={threads}");
        assert_eq!(resumed.stats.executed, N - 9, "threads={threads}");
        assert!(resumed.stats.truncated_bytes > 0);
        assert_eq!(resumed.tally, baseline.tally, "threads={threads}");
        assert_eq!(
            sorted_entries(&path),
            sorted_entries(&full),
            "threads={threads}: the resumed journal must reproduce the uninterrupted one"
        );
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_file(&full);

    // The software engine's streamed journal honours the same contract.
    let w = crc32();
    let n = 30;
    let full = tmp("streamed-llfi-full.journal");
    let _ = std::fs::remove_file(&full);
    let base = svf_campaign(&w.module, &w.input, &w.expected_output, n, SEED, 4);
    let out = svf_campaign_streamed(
        &w.module,
        &w.input,
        &w.expected_output,
        n,
        SEED,
        4,
        Some(&opts(&full, ResumeMode::Fresh)),
        StreamOpts::from_env(),
        None,
    )
    .unwrap();
    assert_eq!(out.tally, base);
    let path = tmp("streamed-llfi-killed.journal");
    interrupt_journal(&full, &path, 11);
    let resumed = svf_campaign_streamed(
        &w.module,
        &w.input,
        &w.expected_output,
        n,
        SEED,
        2,
        Some(&opts(&path, ResumeMode::ResumeRequired)),
        StreamOpts {
            channel_cap: 1,
            spill: None,
            gate: None,
            tee: None,
        },
        None,
    )
    .unwrap();
    assert_eq!(resumed.tally, base);
    assert_eq!(resumed.stats.replayed, 11);
    assert_eq!(resumed.stats.executed, n - 11);
    assert_eq!(sorted_entries(&path), sorted_entries(&full));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&full);
}

/// Group-commit durability regression: every appended record is written
/// through to the file immediately (one `write` per line — the
/// SIGKILL-survivable page-cache contract) even while the fsync is
/// batched behind a large flush interval, quarantines force the flush,
/// and a torn tail after un-fsynced appends still resumes cleanly.
#[test]
fn group_commit_batches_fsync_but_never_buffers_records() {
    let path = tmp("group-commit.journal");
    let _ = std::fs::remove_file(&path);
    let fp = Fingerprint {
        engine: "test-group-commit".to_string(),
        workload: "crc32".to_string(),
        config: "-".to_string(),
        structure: "-".to_string(),
        seed: 1,
        samples: 64,
        params: String::new(),
        version: 1,
    };
    let journal = Journal::create(&path, &fp).unwrap();
    // A flush interval far larger than the appends: none of the writes
    // below are fsync-driven.
    journal.set_flush_interval(1_000_000);
    for i in 0..10u64 {
        journal.append_done(i, &format!("payload-{i}")).unwrap();
        // The line must be on the file (page cache) immediately after
        // the append returns — records are never buffered in the writer.
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            content.lines().count(),
            2 + i as usize,
            "append {i} must be written through"
        );
        assert!(
            content.contains(&format!("R|{i}|payload-{i}")),
            "record {i} must be on the file before any fsync"
        );
    }
    journal.append_quarantined(10, 2, "poison").unwrap();
    journal.flush().unwrap();
    drop(journal);

    // A torn half-record after the group-committed lines truncates away
    // on resume without touching the durable prefix.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(b"R|99|torn-half");
    std::fs::write(&path, &bytes).unwrap();
    let (_, replay) = Journal::resume(&path, &fp).unwrap();
    assert_eq!(replay.entries.len(), 11);
    assert_eq!(replay.truncated_bytes, b"R|99|torn-half".len() as u64);
    for (i, e) in replay.entries.iter().take(10).enumerate() {
        assert_eq!(e.index, i as u64);
    }
    let _ = std::fs::remove_file(&path);
}

/// The journal header binds the campaign to the golden run itself, not
/// just its labels: fingerprints with identical labels but different
/// sample counts hash differently.
#[test]
fn fingerprint_digest_tracks_every_field() {
    let base = Fingerprint {
        engine: "e".into(),
        workload: "w".into(),
        config: "c".into(),
        structure: "s".into(),
        seed: 1,
        samples: 2,
        params: "p".into(),
        version: 3,
    };
    let variants = [
        Fingerprint {
            engine: "e2".into(),
            ..base.clone()
        },
        Fingerprint {
            workload: "w2".into(),
            ..base.clone()
        },
        Fingerprint {
            config: "c2".into(),
            ..base.clone()
        },
        Fingerprint {
            structure: "s2".into(),
            ..base.clone()
        },
        Fingerprint {
            seed: 9,
            ..base.clone()
        },
        Fingerprint {
            samples: 9,
            ..base.clone()
        },
        Fingerprint {
            params: "p2".into(),
            ..base.clone()
        },
        Fingerprint {
            version: 9,
            ..base.clone()
        },
    ];
    for v in &variants {
        assert_ne!(v.canonical(), base.canonical());
        assert_ne!(v.digest(), base.digest());
    }
    assert_eq!(base.digest(), fnv1a64(base.canonical().as_bytes()));
}
