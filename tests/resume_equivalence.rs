//! Kill-and-resume equivalence for journaled campaigns.
//!
//! The durability contract of `vulnstack_core::journal`: a campaign
//! interrupted at an arbitrary point — mid-record, even — and resumed at
//! a *different* thread count produces records bit-identical to an
//! uninterrupted run. Verified here for both injection engines (gefin
//! AVF and llfi SVF) by truncating a completed journal back to a torn
//! prefix, resuming, and comparing records and journal contents; plus
//! the fingerprint refusal and panic-quarantine guarantees.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use vulnstack_core::journal::fnv1a64;
use vulnstack_core::{
    FaultEffect, Fingerprint, JournalError, JournalOpts, ResumableCampaign, ResumeMode, RunPolicy,
};
use vulnstack_gefin::{
    avf_campaign, avf_campaign_resumable, draw_sites, InjectionRecord, Prepared,
};
use vulnstack_llfi::{svf_campaign, svf_campaign_resumable};
use vulnstack_microarch::ooo::{Fpm, HwStructure};
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::{Workload, WorkloadId};

const N: usize = 24;
const SEED: u64 = 11;
const STRUCTURE: HwStructure = HwStructure::RegisterFile;

fn prep() -> &'static Prepared {
    static PREP: OnceLock<Prepared> = OnceLock::new();
    PREP.get_or_init(|| {
        let w = WorkloadId::Crc32.build();
        Prepared::new(&w, CoreModel::A72).expect("prepare crc32/A72")
    })
}

fn crc32() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| WorkloadId::Crc32.build())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vulnstack-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn opts<'a>(path: &'a Path, mode: ResumeMode) -> JournalOpts<'a> {
    JournalOpts {
        path,
        mode,
        policy: RunPolicy::default(),
        workload: "crc32",
    }
}

/// The journal's entry lines, sorted (workers append in completion
/// order, which varies with the thread count; the *set* of records must
/// not).
fn sorted_entries(path: &Path) -> Vec<String> {
    let content = std::fs::read_to_string(path).unwrap();
    let mut lines: Vec<String> = content.lines().skip(1).map(String::from).collect();
    lines.sort();
    lines
}

/// Truncates a completed journal back to its header plus `keep` entry
/// lines, then appends a torn half-record with no terminating newline —
/// the on-disk state a SIGKILL mid-append leaves behind.
fn interrupt_journal(full: &Path, target: &Path, keep: usize) {
    let content = std::fs::read_to_string(full).unwrap();
    let kept: Vec<&str> = content.lines().take(1 + keep).collect();
    let mut torn = format!("{}\n", kept.join("\n"));
    torn.push_str("R|999|half-written");
    std::fs::write(target, torn).unwrap();
}

#[test]
fn gefin_kill_and_resume_is_bit_identical_across_thread_counts() {
    let prep = prep();
    let baseline = avf_campaign(prep, STRUCTURE, N, SEED, 4);

    // Uninterrupted journaled run: records match the plain campaign.
    let full = tmp("gefin-full.journal");
    let _ = std::fs::remove_file(&full);
    let out = avf_campaign_resumable(
        prep,
        STRUCTURE,
        N,
        SEED,
        4,
        &opts(&full, ResumeMode::Fresh),
        None,
    )
    .unwrap();
    assert_eq!(out.result.records, baseline.records);
    assert_eq!(out.stats.executed, N);
    assert!(out.quarantined.is_empty());

    // Interrupt after 9 records and resume at several thread counts:
    // every resume must reconstruct the identical record vector AND the
    // identical journal contents.
    for threads in [2, 4] {
        let path = tmp(&format!("gefin-killed-t{threads}.journal"));
        interrupt_journal(&full, &path, 9);
        let resumed = avf_campaign_resumable(
            prep,
            STRUCTURE,
            N,
            SEED,
            threads,
            &opts(&path, ResumeMode::ResumeRequired),
            None,
        )
        .unwrap();
        assert_eq!(
            resumed.result.records, baseline.records,
            "threads={threads}: resumed records must be bit-identical"
        );
        assert_eq!(resumed.stats.replayed, 9, "threads={threads}");
        assert_eq!(resumed.stats.executed, N - 9, "threads={threads}");
        assert!(
            resumed.stats.truncated_bytes > 0,
            "the torn tail must be detected and truncated"
        );
        assert_eq!(
            sorted_entries(&path),
            sorted_entries(&full),
            "threads={threads}: completed journals must hold the same records"
        );
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_file(&full);
}

#[test]
fn gefin_resume_refuses_a_mismatched_fingerprint() {
    let prep = prep();
    let path = tmp("gefin-mismatch.journal");
    let _ = std::fs::remove_file(&path);
    avf_campaign_resumable(
        prep,
        STRUCTURE,
        N,
        SEED,
        2,
        &opts(&path, ResumeMode::Fresh),
        None,
    )
    .unwrap();
    // Same journal, different seed: a different campaign entirely.
    let err = avf_campaign_resumable(
        prep,
        STRUCTURE,
        N,
        SEED + 1,
        2,
        &opts(&path, ResumeMode::ResumeRequired),
        None,
    )
    .unwrap_err();
    match err {
        JournalError::Mismatch {
            expected, found, ..
        } => {
            assert!(expected.contains(&format!("seed={}", SEED + 1)));
            assert!(found.contains(&format!("seed={SEED}")));
        }
        other => panic!("expected a fingerprint mismatch, got {other}"),
    }
    // Resume against a missing journal is refused too.
    let missing = tmp("gefin-missing.journal");
    let _ = std::fs::remove_file(&missing);
    assert!(matches!(
        avf_campaign_resumable(
            prep,
            STRUCTURE,
            N,
            SEED,
            2,
            &opts(&missing, ResumeMode::ResumeRequired),
            None,
        ),
        Err(JournalError::Missing(_))
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn llfi_kill_and_resume_is_bit_identical_across_thread_counts() {
    let w = crc32();
    let n = 30;
    let baseline = svf_campaign(&w.module, &w.input, &w.expected_output, n, SEED, 4);

    let full = tmp("llfi-full.journal");
    let _ = std::fs::remove_file(&full);
    let out = svf_campaign_resumable(
        &w.module,
        &w.input,
        &w.expected_output,
        n,
        SEED,
        4,
        &opts(&full, ResumeMode::Fresh),
        None,
    )
    .unwrap();
    assert_eq!(out.tally, baseline);
    assert_eq!(out.stats.executed, n);

    for threads in [2, 4] {
        let path = tmp(&format!("llfi-killed-t{threads}.journal"));
        interrupt_journal(&full, &path, 11);
        let resumed = svf_campaign_resumable(
            &w.module,
            &w.input,
            &w.expected_output,
            n,
            SEED,
            threads,
            &opts(&path, ResumeMode::ResumeRequired),
            None,
        )
        .unwrap();
        assert_eq!(resumed.tally, baseline, "threads={threads}");
        assert_eq!(resumed.stats.replayed, 11);
        assert_eq!(resumed.stats.executed, n - 11);
        assert!(resumed.stats.truncated_bytes > 0);
        assert_eq!(
            sorted_entries(&path),
            sorted_entries(&full),
            "threads={threads}: completed journals must hold the same records"
        );
        let _ = std::fs::remove_file(&path);
    }

    // A mismatched sample count is refused (records from a shorter
    // campaign must never seed a longer one).
    let err = svf_campaign_resumable(
        &w.module,
        &w.input,
        &w.expected_output,
        n + 1,
        SEED,
        2,
        &opts(&full, ResumeMode::ResumeRequired),
        None,
    )
    .unwrap_err();
    assert!(matches!(err, JournalError::Mismatch { .. }), "{err}");
    let _ = std::fs::remove_file(&full);
}

/// Journal codec for [`InjectionRecord`] mirroring the engine's own
/// (`cycle,bit,effect,fpm,fpm_cycle`) — the integration test drives the
/// core orchestrator directly so it can poison one site.
fn encode(r: &InjectionRecord) -> String {
    format!(
        "{},{},{},{},{}",
        r.cycle,
        r.bit,
        r.effect.name(),
        r.fpm.map_or("-", Fpm::name),
        r.fpm_cycle
            .map_or_else(|| "-".to_string(), |c| c.to_string()),
    )
}

fn decode(s: &str) -> Option<InjectionRecord> {
    let mut it = s.split(',');
    let cycle = it.next()?.parse().ok()?;
    let bit = it.next()?.parse().ok()?;
    let effect = FaultEffect::from_name(it.next()?)?;
    let fpm = match it.next()? {
        "-" => None,
        name => Some(Fpm::from_name(name)?),
    };
    let fpm_cycle = match it.next()? {
        "-" => None,
        c => Some(c.parse().ok()?),
    };
    Some(InjectionRecord {
        cycle,
        bit,
        effect,
        fpm,
        fpm_cycle,
    })
}

#[test]
fn a_panicking_injection_is_quarantined_and_the_campaign_completes() {
    let prep = prep();
    let sites = draw_sites(prep, STRUCTURE, N, SEED);
    let order: Vec<usize> = (0..sites.len()).collect();
    let baseline = avf_campaign(prep, STRUCTURE, N, SEED, 4);
    let path = tmp("gefin-poison.journal");
    let _ = std::fs::remove_file(&path);
    let fingerprint = Fingerprint {
        engine: "test-poisoned-avf".to_string(),
        workload: "crc32".to_string(),
        config: "A72".to_string(),
        structure: STRUCTURE.name().to_string(),
        seed: SEED,
        samples: N as u64,
        params: String::new(),
        version: 1,
    };
    let campaign = ResumableCampaign {
        path: &path,
        fingerprint,
        mode: ResumeMode::Fresh,
        items: &sites,
        order: &order,
        threads: 4,
        policy: RunPolicy { max_retries: 1 },
        meta: &[],
    };
    let poisoned = 3usize;
    let out = campaign
        .run(
            |i, &(cycle, bit)| {
                // One deliberately poisoned injection among real runs.
                assert!(i != poisoned, "injector blew up on site {i}");
                vulnstack_gefin::avf::run_one(prep, STRUCTURE, cycle, bit)
            },
            encode,
            decode,
            None,
        )
        .unwrap();

    // The campaign completed: every healthy site carries its real
    // record, the poisoned one a quarantine marker.
    assert_eq!(out.outcomes.len(), N);
    let quarantined = out.quarantined();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].index, poisoned);
    assert_eq!(quarantined[0].attempts, 2, "1 try + 1 retry");
    assert!(quarantined[0].message.contains("blew up on site 3"));
    for (i, outcome) in out.outcomes.iter().enumerate() {
        if i != poisoned {
            assert_eq!(outcome.done(), Some(&baseline.records[i]), "site {i}");
        }
    }

    // Resuming replays the quarantine durably instead of re-running the
    // poison site: zero executions, same outcome.
    let resumed = ResumableCampaign {
        mode: ResumeMode::ResumeRequired,
        ..campaign
    }
    .run(
        |_, &(cycle, bit)| vulnstack_gefin::avf::run_one(prep, STRUCTURE, cycle, bit),
        encode,
        decode,
        None,
    )
    .unwrap();
    assert_eq!(resumed.stats.executed, 0);
    assert_eq!(resumed.stats.replayed, N);
    assert_eq!(resumed.stats.quarantined, 1);
    let _ = std::fs::remove_file(&path);
}

/// The journal header binds the campaign to the golden run itself, not
/// just its labels: fingerprints with identical labels but different
/// sample counts hash differently.
#[test]
fn fingerprint_digest_tracks_every_field() {
    let base = Fingerprint {
        engine: "e".into(),
        workload: "w".into(),
        config: "c".into(),
        structure: "s".into(),
        seed: 1,
        samples: 2,
        params: "p".into(),
        version: 3,
    };
    let variants = [
        Fingerprint {
            engine: "e2".into(),
            ..base.clone()
        },
        Fingerprint {
            workload: "w2".into(),
            ..base.clone()
        },
        Fingerprint {
            config: "c2".into(),
            ..base.clone()
        },
        Fingerprint {
            structure: "s2".into(),
            ..base.clone()
        },
        Fingerprint {
            seed: 9,
            ..base.clone()
        },
        Fingerprint {
            samples: 9,
            ..base.clone()
        },
        Fingerprint {
            params: "p2".into(),
            ..base.clone()
        },
        Fingerprint {
            version: 9,
            ..base.clone()
        },
    ];
    for v in &variants {
        assert_ne!(v.canonical(), base.canonical());
        assert_ne!(v.digest(), base.digest());
    }
    assert_eq!(base.digest(), fnv1a64(base.canonical().as_bytes()));
}
