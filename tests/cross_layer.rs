//! Workspace-level integration tests: the full measurement stack wired
//! end-to-end, exercising the same paths as the figure binaries but with
//! small fault counts.

use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_core::effects::FaultEffect;
use vulnstack_ft::harden;
use vulnstack_gefin::{avf_campaign, pvf_campaign, FuncPrepared, Prepared, PvfMode};
use vulnstack_isa::Isa;
use vulnstack_kernel::SystemImage;
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::{CoreModel, OooCore, RunStatus};
use vulnstack_workloads::{Workload, WorkloadId};

#[test]
fn hardened_workloads_run_clean_on_the_ooo_core() {
    for id in [WorkloadId::Sha, WorkloadId::Smooth] {
        let base = id.build();
        let hard = Workload {
            module: harden(&base.module).unwrap(),
            ..base.clone()
        };
        for model in [CoreModel::A9, CoreModel::A72] {
            let cfg = model.config();
            let compiled = compile(&hard.module, cfg.isa, &CompileOpts::default()).unwrap();
            let image = SystemImage::build(&compiled, &hard.input).unwrap();
            let out = OooCore::new(&cfg, &image).run(400_000_000);
            assert_eq!(out.sim.status, RunStatus::Exited(0), "{id}/{model}");
            assert_eq!(out.sim.output, base.expected_output, "{id}/{model}");
        }
    }
}

#[test]
fn hardening_increases_cycle_count_in_the_paper_envelope() {
    let base = WorkloadId::Sha.build();
    let hard = Workload {
        module: harden(&base.module).unwrap(),
        ..base.clone()
    };
    let p0 = Prepared::new(&base, CoreModel::A72).unwrap();
    let p1 = Prepared::new(&hard, CoreModel::A72).unwrap();
    let ratio = p1.golden.cycles as f64 / p0.golden.cycles as f64;
    assert!(
        (1.5..5.0).contains(&ratio),
        "cycle inflation {ratio:.2} out of envelope"
    );
}

#[test]
fn avf_is_orders_of_magnitude_below_svf() {
    // The paper's scale-separation observation: software-level
    // vulnerability is measured on live values only, so it is far larger
    // than the cross-layer AVF of a big, mostly-idle structure like L2.
    let w = WorkloadId::Fft.build();
    let svf = vulnstack_llfi::svf_campaign(&w.module, &w.input, &w.expected_output, 60, 3, 4);
    let prep = Prepared::new(&w, CoreModel::A72).unwrap();
    let l2 = avf_campaign(&prep, HwStructure::L2, 60, 3, 4);
    assert!(
        svf.vf().total() > 5.0 * l2.avf().total(),
        "svf {:?} vs l2 avf {:?}",
        svf.vf(),
        l2.avf()
    );
}

#[test]
fn detected_outcomes_only_appear_with_hardening() {
    let base = WorkloadId::Smooth.build();
    let hard = Workload {
        module: harden(&base.module).unwrap(),
        ..base.clone()
    };

    let t_base =
        vulnstack_llfi::svf_campaign(&base.module, &base.input, &base.expected_output, 50, 5, 4);
    assert_eq!(t_base.detected, 0, "unhardened code cannot detect");

    let t_hard =
        vulnstack_llfi::svf_campaign(&hard.module, &hard.input, &hard.expected_output, 50, 5, 4);
    assert!(
        t_hard.detected > 0,
        "hardened code should detect some faults: {t_hard:?}"
    );
}

#[test]
fn pvf_sees_kernel_faults_that_svf_cannot() {
    // PVF runs on the full system: its fault population includes kernel
    // text/instructions. We can't compare populations directly, but the
    // kernel share of executed instructions must be nonzero (the paper
    // quotes 19.5% for its sha).
    let w = WorkloadId::Sha.build();
    let prep = FuncPrepared::new(&w, Isa::Va64).unwrap();
    let kernel_share = prep.profile.kernel_instrs as f64
        / (prep.profile.kernel_instrs + prep.profile.user_instrs) as f64;
    assert!(
        kernel_share > 0.001,
        "kernel share {kernel_share:.4} suspiciously low"
    );
    // And a WI campaign must run (exercising text corruption incl. kernel).
    let t = pvf_campaign(&prep, PvfMode::Wi, 12, 1, 4);
    assert_eq!(t.total(), 12);
}

#[test]
fn fault_effect_classes_are_exhaustive_over_campaigns() {
    let w = WorkloadId::Qsort.build();
    let prep = Prepared::new(&w, CoreModel::A9).unwrap();
    let r = avf_campaign(&prep, HwStructure::L1d, 40, 9, 4);
    let total = FaultEffect::ALL
        .iter()
        .map(|&e| match e {
            FaultEffect::Masked => r.tally.masked,
            FaultEffect::Sdc => r.tally.sdc,
            FaultEffect::Crash => r.tally.crash,
            FaultEffect::Detected => r.tally.detected,
        })
        .sum::<u64>();
    assert_eq!(total, 40);
}

#[test]
fn esc_faults_never_have_a_prior_software_manifestation() {
    // By definition an ESC fault reaches the output without passing
    // through the pipeline; sweep output-heavy workloads and check the
    // classifier respects the definition (every ESC record is also an
    // output corruption, i.e. SDC, or at minimum not Masked).
    let w = WorkloadId::Smooth.build();
    let prep = Prepared::new(&w, CoreModel::A9).unwrap();
    let r = avf_campaign(&prep, HwStructure::L1d, 80, 13, 4);
    for rec in &r.records {
        if rec.fpm == Some(vulnstack_microarch::ooo::Fpm::Esc) {
            assert_ne!(
                rec.effect,
                FaultEffect::Masked,
                "ESC faults corrupt the output"
            );
        }
    }
}
