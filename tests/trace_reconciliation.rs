//! The trace layer's contract with the campaign layer: per-injection
//! fault-lifetime traces are a *refinement* of the campaign's
//! classification, never a different story. Each trace's first
//! architecturally-visible FPM must equal the record's FPM, their sums
//! must reconcile exactly with the campaign's [`FpmDist`], and enabling
//! tracing or metrics must not change a single record.

use vulnstack_core::trace::CampaignMetrics;
use vulnstack_gefin::{
    avf_campaign_metered, avf_campaign_traced, avf_campaign_with, InjectEngine, Prepared,
};
use vulnstack_microarch::ooo::{Fpm, HwStructure};
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::WorkloadId;

const N: usize = 48;
const SEED: u64 = 2021;

fn prepared() -> Prepared {
    Prepared::new(&WorkloadId::Qsort.build(), CoreModel::A72).unwrap()
}

#[test]
fn trace_fpm_transitions_reconcile_exactly_with_campaign_counts() {
    let prep = prepared();
    let structure = HwStructure::RegisterFile;
    let (result, traces) = avf_campaign_traced(
        &prep,
        structure,
        N,
        SEED,
        4,
        InjectEngine::Checkpointed,
        None,
    );
    assert_eq!(traces.len(), result.records.len());

    // Per-injection: the trace's first ArchVisible event is the record's
    // FPM classification (same fault, same cycle).
    for (rec, trace) in result.records.iter().zip(&traces) {
        assert_eq!(
            trace.first_visible(),
            rec.fpm,
            "trace and record disagree for site @{} bit {}",
            rec.cycle,
            rec.bit
        );
        if let (Some((_, tc)), Some(rc)) = (trace.counts().first_visible, rec.fpm_cycle) {
            assert_eq!(tc, rc, "manifestation cycle mismatch");
        }
    }

    // Aggregate: trace-derived FPM transition counts sum exactly to the
    // campaign's FpmDist — the Fig. 6 reconciliation.
    for fpm in Fpm::ALL {
        let from_traces = traces
            .iter()
            .filter(|t| t.first_visible() == Some(fpm))
            .count() as u64;
        assert_eq!(
            from_traces,
            result.fpm.count(fpm),
            "FPM {fpm} does not reconcile"
        );
    }
    let masked_traces = traces
        .iter()
        .filter(|t| t.first_visible().is_none())
        .count() as u64;
    assert_eq!(masked_traces, result.fpm.masked());

    // And the traced campaign classifies identically to the plain one.
    let plain = avf_campaign_with(&prep, structure, N, SEED, 4, InjectEngine::Checkpointed);
    assert_eq!(result.records, plain.records);
    assert_eq!(result.tally, plain.tally);
}

#[test]
fn metrics_collection_does_not_perturb_results() {
    let prep = prepared();
    let structure = HwStructure::Lsq;
    let metrics = CampaignMetrics::new("reconciliation-test");
    let metered = avf_campaign_metered(
        &prep,
        structure,
        N,
        SEED,
        3,
        InjectEngine::Checkpointed,
        Some(&metrics),
    );
    let plain = avf_campaign_with(&prep, structure, N, SEED, 3, InjectEngine::Checkpointed);
    assert_eq!(metered.records, plain.records);

    let report = metrics.report();
    assert_eq!(report.sites, N as u64, "one span per injection");
    assert_eq!(
        report.per_worker.iter().map(|w| w.sites).sum::<u64>(),
        N as u64
    );
    // One restore distance per injection; every distance fits the golden
    // run's cycle range.
    assert_eq!(report.restore_hist.iter().sum::<u64>(), N as u64);
    assert!(report.mean_restore_distance() <= prep.golden.cycles as f64);
    // Extinct early exits are a subset of masked classifications.
    assert!(report.extinct_early <= metered.tally.masked);
    // Spans are well-formed (monotone, non-negative durations).
    for s in &report.spans {
        assert!(s.end_us >= s.start_us);
    }
}

#[test]
fn disabled_tracing_is_structurally_free() {
    // The <2% wall-clock criterion is asserted against the bench binary;
    // here the smoke check is structural: an untraced run carries no
    // trace state at all, and the traced run of the same site yields the
    // same record (the emission sites only *observe*).
    let prep = prepared();
    let structure = HwStructure::RegisterFile;
    let plain = avf_campaign_with(&prep, structure, 12, 7, 2, InjectEngine::Checkpointed);
    let (traced, traces) =
        avf_campaign_traced(&prep, structure, 12, 7, 2, InjectEngine::Checkpointed, None);
    assert_eq!(plain.records, traced.records);
    // Every traced run at minimum logged its injection.
    assert!(traces.iter().all(|t| !t.is_empty()));
}
