//! Differential fuzzing of the execution layers: random VIR programs must
//! behave identically when interpreted and when compiled for VA32/VA64
//! and run full-system on the functional core — including *which trap*
//! they die with, if any.
//!
//! This is the strongest correctness net over the ISA semantics, the
//! compiler (instruction selection, register allocation, spilling), the
//! kernel syscall path and the interpreter.

use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_isa::{Isa, TrapCause};
use vulnstack_kernel::SystemImage;
use vulnstack_microarch::{FuncCore, RunStatus};
use vulnstack_vir::interp::{Interpreter, RunStatus as IStatus};
use vulnstack_vir::{BinOp, CmpPred, FuncBuilder, Module, ModuleBuilder, Operand, VReg};

/// Simple deterministic generator.
struct Gen {
    s: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            s: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }
    fn next(&mut self) -> u64 {
        let mut x = self.s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.s = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn imm(&mut self) -> i32 {
        match self.below(4) {
            0 => self.next() as i32,
            1 => (self.below(200) as i32) - 100,
            2 => [0, 1, -1, i32::MAX, i32::MIN, 0x7fff, -0x8000][self.below(7) as usize],
            _ => 1 << self.below(31),
        }
    }
}

const NVALS: usize = 8;
/// Global scratch array size in words (all indices are masked into it).
const ARR_WORDS: i32 = 64;

/// Emits a random arithmetic statement over the value pool.
fn emit_stmt(f: &mut FuncBuilder, g: &mut Gen, pool: &[VReg], arr: VReg) {
    let pick = |g: &mut Gen| pool[g.below(NVALS as u64) as usize];
    match g.below(10) {
        0..=4 => {
            // Binary op; shifts and divisions included (division by zero
            // must trap identically everywhere).
            let ops = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::MulHS,
                BinOp::MulHU,
                BinOp::And,
                BinOp::Or,
                BinOp::Xor,
                BinOp::Shl,
                BinOp::ShrL,
                BinOp::ShrA,
                BinOp::DivS,
                BinOp::DivU,
                BinOp::RemS,
                BinOp::RemU,
            ];
            let op = ops[g.below(ops.len() as u64) as usize];
            let a = pick(g);
            let b: Operand = if g.below(3) == 0 {
                g.imm().into()
            } else {
                pick(g).into()
            };
            // Keep divisors nonzero most of the time so programs usually
            // finish, but let some trap.
            let b = if op.traps_on_zero() && g.below(4) > 0 {
                let nz = f.or(b, 1);
                Operand::Reg(nz)
            } else {
                b
            };
            let r = f.bin(op, a, b);
            f.set(pick(g), r);
        }
        5 => {
            let preds = [
                CmpPred::Eq,
                CmpPred::Ne,
                CmpPred::SLt,
                CmpPred::SLe,
                CmpPred::SGt,
                CmpPred::SGe,
                CmpPred::ULt,
                CmpPred::ULe,
                CmpPred::UGt,
                CmpPred::UGe,
            ];
            let p = preds[g.below(preds.len() as u64) as usize];
            let c = f.cmp(p, pick(g), pick(g));
            f.set(pick(g), c);
        }
        6 => {
            let r = f.select(pick(g), pick(g), pick(g));
            f.set(pick(g), r);
        }
        7 => {
            // Masked store into the scratch array.
            let idx = f.and(pick(g), ARR_WORDS - 1);
            let p = {
                let off = f.shl(idx, 2);
                f.add(arr, off)
            };
            f.store32(pick(g), p, 0);
        }
        8 => {
            // Masked load from the scratch array.
            let idx = f.and(pick(g), ARR_WORDS - 1);
            let p = {
                let off = f.shl(idx, 2);
                f.add(arr, off)
            };
            let v = f.load32(p, 0);
            f.set(pick(g), v);
        }
        _ => {
            // Conditional update.
            let c = f.slt(pick(g), pick(g));
            let taken = f.select(c, pick(g), pick(g));
            f.set(pick(g), taken);
        }
    }
}

/// Generates a random-but-terminating program.
fn gen_module(seed: u64) -> Module {
    let mut g = Gen::new(seed);
    let mut mb = ModuleBuilder::new(format!("fuzz{seed}"));
    let init: Vec<i32> = (0..ARR_WORDS).map(|_| g.imm()).collect();
    let garr = mb.global_words("scratch", &init);
    let gout = mb.global_zeroed("out", (ARR_WORDS * 4) as usize, 4);

    // Optional helper function exercising the call path.
    let helper = mb.declare("helper", 2);
    {
        let mut h = mb.function("helper", 2);
        let a = h.param(0);
        let b = h.param(1);
        let x = h.mul(a, 17);
        let y = h.xor(x, b);
        let z = h.shra(y, 3);
        h.ret(Some(z.into()));
        mb.finish_function(h);
    }

    let mut f = mb.function("main", 0);
    let arr = f.global_addr(garr);
    let pool: Vec<VReg> = (0..NVALS)
        .map(|_| {
            let v = f.fresh();
            let c = g.imm();
            f.set_c(v, c);
            v
        })
        .collect();

    // Straight-line prologue.
    for _ in 0..g.below(12) + 4 {
        emit_stmt(&mut f, &mut g, &pool, arr);
    }
    // A couple of bounded loops with random bodies.
    for _ in 0..g.below(3) + 1 {
        let iters = (g.below(20) + 2) as i32;
        let body_len = g.below(8) + 2;
        let seed2 = g.next();
        f.for_range(0, iters, |f, i| {
            let mut g2 = Gen::new(seed2);
            let s = f.add(pool[0], i);
            f.set(pool[0], s);
            for _ in 0..body_len {
                emit_stmt(f, &mut g2, &pool, arr);
            }
        });
    }
    // Call the helper with two pool values.
    let r = f.call(helper, &[pool[1].into(), pool[2].into()]);
    f.set(pool[3], r);
    // Epilogue: dump pool + array to the output.
    let outp = f.global_addr(gout);
    for (i, &v) in pool.iter().enumerate() {
        f.store32(v, outp, (i * 4) as i32);
    }
    f.for_range(0, ARR_WORDS - NVALS as i32, |f, i| {
        let off = f.shl(i, 2);
        let src = f.add(arr, off);
        let v = f.load32(src, 0);
        let dstoff = f.add(off, (NVALS * 4) as i32);
        let dst = f.add(outp, dstoff);
        f.store32(v, dst, 0);
    });
    f.sys_write(outp, ARR_WORDS * 4);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);
    mb.finish().expect("generated module verifies")
}

/// Normalised terminal state for comparison across engines.
#[derive(Debug, PartialEq, Eq)]
enum Norm {
    Exit(i32, Vec<u8>),
    Trap(TrapCause),
    Hang,
}

fn norm_interp(s: IStatus, out: Vec<u8>) -> Norm {
    match s {
        IStatus::Exited(c) => Norm::Exit(c, out),
        IStatus::Detected(c) => Norm::Exit(c | 0x4000_0000u32 as i32, out),
        IStatus::Trapped(t) => Norm::Trap(t),
        IStatus::Timeout => Norm::Hang,
    }
}

fn norm_func(s: RunStatus, out: Vec<u8>) -> Norm {
    match s {
        RunStatus::Exited(c) => Norm::Exit(c, out),
        RunStatus::Detected(c) => Norm::Exit(c | 0x4000_0000u32 as i32, out),
        RunStatus::Crashed(code) => {
            Norm::Trap(TrapCause::from_code(code as u64).unwrap_or(TrapCause::AccessFault))
        }
        RunStatus::KernelPanic => Norm::Trap(TrapCause::AccessFault),
        RunStatus::Timeout => Norm::Hang,
    }
}

#[test]
fn random_programs_agree_across_all_layers() {
    let mut mismatches = Vec::new();
    for seed in 0..120u64 {
        let module = gen_module(seed);
        let i = Interpreter::new(&module)
            .with_budget(20_000_000)
            .run()
            .unwrap();
        let reference = norm_interp(i.status, i.output);
        for isa in [Isa::Va32, Isa::Va64] {
            let compiled = match compile(&module, isa, &CompileOpts::default()) {
                Ok(c) => c,
                Err(e) => {
                    mismatches.push(format!("seed {seed}/{isa}: compile error {e}"));
                    continue;
                }
            };
            let image = SystemImage::build(&compiled, &[]).unwrap();
            let f = FuncCore::new(&image).run(200_000_000);
            let got = norm_func(f.status, f.output);
            if got != reference {
                mismatches.push(format!(
                    "seed {seed}/{isa}: interpreter {reference:?} vs compiled {got:?}"
                ));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} mismatches:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn random_programs_trap_identically_on_division_by_zero() {
    // Focused generator variant where divisors are frequently zero.
    let mut both_trapped = 0;
    for seed in 1000..1060u64 {
        let mut mb = ModuleBuilder::new("div");
        let mut f = mb.function("main", 0);
        let mut g = Gen::new(seed);
        let a = f.c(g.imm());
        let b = f.c(if g.below(2) == 0 { 0 } else { g.imm() });
        let d = f.divs(a, b);
        f.sys_exit(d);
        f.ret(None);
        mb.finish_function(f);
        let m = mb.finish().unwrap();
        let i = Interpreter::new(&m).run().unwrap();
        let reference = norm_interp(i.status, i.output);
        if matches!(reference, Norm::Trap(TrapCause::DivideByZero)) {
            both_trapped += 1;
        }
        for isa in [Isa::Va32, Isa::Va64] {
            let c = compile(&m, isa, &CompileOpts::default()).unwrap();
            let img = SystemImage::build(&c, &[]).unwrap();
            let out = FuncCore::new(&img).run(10_000_000);
            assert_eq!(
                norm_func(out.status, out.output),
                reference,
                "seed {seed}/{isa}"
            );
        }
    }
    assert!(both_trapped > 5, "generator never produced zero divisors");
}
