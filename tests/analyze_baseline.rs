//! Static-analysis regression baselines.
//!
//! `ci/analyze-baseline.txt` records, per (workload, ISA), the lint
//! count the analyzer reports and the number of architectural registers
//! the static pruning oracle proves dead on the full bootable image.
//! CI fails when either regresses — lints appearing where there were
//! none, or the oracle losing provable-dead registers (each lost
//! register is simulation work the pruner silently stops saving).
//! Improvements (fewer lints, more dead registers) pass; refresh the
//! recorded numbers with `VULNSTACK_UPDATE_BASELINE=1 cargo test --test
//! analyze_baseline`.

use std::collections::HashMap;
use std::fmt::Write as _;

use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_gefin::static_classifier;
use vulnstack_isa::Isa;
use vulnstack_kernel::SystemImage;
use vulnstack_workloads::WorkloadId;

const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/ci/analyze-baseline.txt");

fn current() -> Vec<(String, String, usize, usize)> {
    let mut rows = Vec::new();
    for id in WorkloadId::ALL {
        let w = id.build();
        for isa in [Isa::Va32, Isa::Va64] {
            let compiled = compile(&w.module, isa, &CompileOpts::default()).unwrap();
            let lints = vulnstack_analyze::analyze(&compiled).lints.len();
            let image = SystemImage::build(&compiled, &w.input).unwrap();
            let dead = static_classifier(&image).dead_regs().len();
            rows.push((id.name().to_string(), format!("{isa}"), lints, dead));
        }
    }
    rows
}

#[test]
fn lints_and_static_dead_registers_hold_their_baseline() {
    let rows = current();
    if std::env::var_os("VULNSTACK_UPDATE_BASELINE").is_some() {
        let mut out = String::from(
            "# workload isa lints static_dead_regs (regenerate: \
                          VULNSTACK_UPDATE_BASELINE=1 cargo test --test analyze_baseline)\n",
        );
        for (name, isa, lints, dead) in &rows {
            let _ = writeln!(out, "{name} {isa} {lints} {dead}");
        }
        std::fs::write(BASELINE_PATH, out).expect("write baseline");
        return;
    }
    let text = std::fs::read_to_string(BASELINE_PATH)
        .expect("baseline missing; regenerate with VULNSTACK_UPDATE_BASELINE=1");
    let mut baseline: HashMap<(String, String), (usize, usize)> = HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(f.len(), 4, "malformed baseline line: {line}");
        baseline.insert(
            (f[0].to_string(), f[1].to_string()),
            (f[2].parse().unwrap(), f[3].parse().unwrap()),
        );
    }
    let mut failures = Vec::new();
    for (name, isa, lints, dead) in &rows {
        let Some(&(max_lints, min_dead)) = baseline.get(&(name.clone(), isa.clone())) else {
            failures.push(format!(
                "{name}/{isa}: not in baseline (new workload? regenerate)"
            ));
            continue;
        };
        if *lints > max_lints {
            failures.push(format!(
                "{name}/{isa}: {lints} lints > baseline {max_lints}"
            ));
        }
        if *dead < min_dead {
            failures.push(format!(
                "{name}/{isa}: {dead} static-dead regs < baseline {min_dead}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "static-analysis baseline regressions:\n{}",
        failures.join("\n")
    );
}
