//! Edge-case tests of the mini-kernel's syscall handlers, driven through
//! compiled programs on the functional core (the same paths all injection
//! campaigns cross).

use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_isa::{Isa, TrapCause};
use vulnstack_kernel::memmap;
use vulnstack_kernel::SystemImage;
use vulnstack_microarch::CoreModel;
use vulnstack_microarch::{FuncCore, OooCore, RunStatus};
use vulnstack_vir::ModuleBuilder;

fn run_prog(
    build: impl FnOnce(&mut vulnstack_vir::FuncBuilder),
    isa: Isa,
    input: &[u8],
) -> vulnstack_microarch::SimOutcome {
    let mut mb = ModuleBuilder::new("t");
    let mut f = mb.function("main", 0);
    build(&mut f);
    f.ret(None);
    mb.finish_function(f);
    let m = mb.finish().unwrap();
    let c = compile(&m, isa, &CompileOpts::default()).unwrap();
    let img = SystemImage::build(&c, input).unwrap();
    FuncCore::new(&img).run(50_000_000)
}

#[test]
fn write_with_kernel_pointer_is_killed() {
    // Pointing write() at kernel memory must be rejected by the handler's
    // bounds check (crash), not silently leak kernel bytes.
    for isa in [Isa::Va32, Isa::Va64] {
        let out = run_prog(
            |f| {
                let p = f.c(memmap::KERNEL_DATA as i32);
                f.sys_write(p, 16);
                f.sys_exit(0);
            },
            isa,
            &[],
        );
        assert_eq!(
            out.status,
            RunStatus::Crashed(TrapCause::AccessFault.code() as u32),
            "{isa}"
        );
        assert!(out.output.is_empty(), "{isa}: kernel bytes leaked");
    }
}

#[test]
fn write_spanning_past_memory_end_is_killed() {
    let out = run_prog(
        |f| {
            let p = f.c((memmap::MEM_SIZE - 8) as i32);
            f.sys_write(p, 64);
            f.sys_exit(0);
        },
        Isa::Va64,
        &[],
    );
    assert_eq!(
        out.status,
        RunStatus::Crashed(TrapCause::AccessFault.code() as u32)
    );
}

#[test]
fn zero_length_write_succeeds() {
    let out = run_prog(
        |f| {
            let slot = f.stack_slot(4, 4);
            let p = f.slot_addr(slot);
            f.sys_write(p, 0);
            f.sys_exit(9);
        },
        Isa::Va32,
        &[],
    );
    assert_eq!(out.status, RunStatus::Exited(9));
    assert!(out.output.is_empty());
}

#[test]
fn read_past_input_returns_short_count() {
    let out = run_prog(
        |f| {
            let slot = f.stack_slot(64, 4);
            let p = f.slot_addr(slot);
            let n1 = f.sys_read(p, 64); // gets all 10
            let n2 = f.sys_read(p, 64); // input exhausted -> 0
            let x = f.mul(n1, 100);
            let code = f.add(x, n2);
            f.sys_exit(code);
        },
        Isa::Va64,
        &[0u8; 10],
    );
    assert_eq!(out.status, RunStatus::Exited(1000));
}

#[test]
fn brk_rejects_shrinking_below_data_and_growing_into_stack() {
    let out = run_prog(
        |f| {
            // Grow beyond the stack limit: expect -1.
            let big = f.sys_brk(0x0030_0000);
            let bad1 = f.eq(big, -1);
            // Shrink below the data base: expect -1.
            let neg = f.sys_brk(-0x0020_0000);
            let bad2 = f.eq(neg, -1);
            // Modest growth: expect a sane address.
            let ok = f.sys_brk(4096);
            let good = f.cmp(vulnstack_vir::CmpPred::SGt, ok, 0);
            let a = f.and(bad1, bad2);
            let all = f.and(a, good);
            let code = f.select(all, 0, 1);
            f.sys_exit(code);
        },
        Isa::Va64,
        &[],
    );
    assert_eq!(out.status, RunStatus::Exited(0));
}

#[test]
fn unknown_syscall_number_is_fatal() {
    // Craft a raw syscall with an invalid number through VIR-level
    // registers is not possible; instead exercise it via the privileged
    // path: user HALT is a privilege violation.
    let out = run_prog(
        |f| {
            // `detect` after exit is unreachable; use a store to a null-ish
            // pointer instead to double-check the crash code plumbing.
            let p = f.c(0x10);
            f.store32(1, p, 0);
            f.sys_exit(0);
        },
        Isa::Va32,
        &[],
    );
    assert_eq!(
        out.status,
        RunStatus::Crashed(TrapCause::AccessFault.code() as u32)
    );
}

#[test]
fn output_accumulates_across_many_writes_in_order() {
    let out = run_prog(
        |f| {
            let slot = f.stack_slot(4, 4);
            let p = f.slot_addr(slot);
            f.for_range(0, 50, |f, i| {
                f.store8(i, p, 0);
                f.sys_write(p, 1);
            });
            f.sys_exit(0);
        },
        Isa::Va64,
        &[],
    );
    assert_eq!(out.status, RunStatus::Exited(0));
    let want: Vec<u8> = (0..50).collect();
    assert_eq!(out.output, want);
}

#[test]
fn kernel_work_is_visible_in_cycle_level_runs_too() {
    // The same copy loops must run through the OoO pipeline; check output
    // equivalence between the functional and cycle-level engines for a
    // write-heavy program.
    let mut mb = ModuleBuilder::new("t");
    let mut f = mb.function("main", 0);
    let slot = f.stack_slot(256, 4);
    let p = f.slot_addr(slot);
    f.for_range(0, 256, |f, i| {
        let x = f.mul(i, 37);
        let b = f.and(x, 0xff);
        let q = f.add(p, i);
        f.store8(b, q, 0);
    });
    f.sys_write(p, 256);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);
    let m = mb.finish().unwrap();
    let c = compile(&m, Isa::Va32, &CompileOpts::default()).unwrap();
    let img = SystemImage::build(&c, &[]).unwrap();
    let a = FuncCore::new(&img).run(50_000_000);
    let b = OooCore::new(&CoreModel::A9.config(), &img)
        .run(50_000_000)
        .sim;
    assert_eq!(a.status, RunStatus::Exited(0));
    assert_eq!(a.status, b.status);
    assert_eq!(a.output, b.output);
    assert_eq!(a.output.len(), 256);
}
