//! Cross-layer pessimism ordering (the paper's §II.A): the cheaper an
//! estimation method, the more pessimistic its answer must be. For the
//! register file that means
//!
//! ```text
//! static PVF (zero runs)  >=  dynamic ACE (one run)  >=  injection AVF
//! ```
//!
//! Static PVF comes from `vulnstack-analyze` (pure binary analysis:
//! liveness over a recovered CFG, weighted by a static loop model); ACE
//! from one fault-free instrumented run; injection from a sampled
//! campaign. The lower comparison carries a 0.8 slack for sampling noise,
//! matching the tolerance the ACE-vs-injection seed test uses.

use vulnstack_gefin::static_vs_dynamic;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::WorkloadId;

const FAULTS: usize = 60;
const SAMPLING_SLACK: f64 = 0.8;

fn check(id: WorkloadId, model: CoreModel, seed: u64) {
    let w = id.build();
    let cmp = static_vs_dynamic(&w, model, FAULTS, seed, 4).unwrap();
    let inj = cmp.injected_rf_avf.unwrap();

    // All three are meaningful fractions.
    assert!(
        cmp.static_rf_pvf > 0.0 && cmp.static_rf_pvf < 1.0,
        "{cmp:?}"
    );
    assert!(cmp.ace_rf_avf > 0.0 && cmp.ace_rf_avf < 1.0, "{cmp:?}");
    assert!((0.0..=1.0).contains(&inj), "{cmp:?}");

    // Static analysis must not lose the analytical bound: it cannot see
    // logical masking at all, so it sits strictly above the ACE estimate.
    assert!(
        cmp.static_rf_pvf >= cmp.ace_rf_avf,
        "{} on {}: static PVF {:.4} < dynamic ACE {:.4}",
        id.name(),
        model.name(),
        cmp.static_rf_pvf,
        cmp.ace_rf_avf
    );
    // ACE in turn bounds measured AVF (slack for sampling noise).
    assert!(
        cmp.ace_rf_avf >= SAMPLING_SLACK * inj,
        "{} on {}: ACE {:.4} < injection {:.4}",
        id.name(),
        model.name(),
        cmp.ace_rf_avf,
        inj
    );
    assert!(cmp.ordering_holds(SAMPLING_SLACK));

    // The static pass also certifies the binary is lint-clean.
    assert_eq!(
        cmp.lint_count,
        0,
        "{} on {}: lints",
        id.name(),
        model.name()
    );
}

#[test]
fn ordering_holds_for_crc32_on_va64() {
    check(WorkloadId::Crc32, CoreModel::A72, 11);
}

#[test]
fn ordering_holds_for_qsort_on_va32() {
    check(WorkloadId::Qsort, CoreModel::A9, 12);
}

#[test]
fn ordering_holds_for_sha_on_va32() {
    check(WorkloadId::Sha, CoreModel::A9, 13);
}

#[test]
fn static_pvf_is_isa_sensitive_but_model_insensitive() {
    // PVF is an architectural measure: it may differ between ISAs but must
    // be identical across core models of the same ISA (A57 vs A72), since
    // the static analyzer never looks at the microarchitecture.
    let w = WorkloadId::Fft.build();
    let a57 = static_vs_dynamic(&w, CoreModel::A57, 0, 1, 1).unwrap();
    let a72 = static_vs_dynamic(&w, CoreModel::A72, 0, 1, 1).unwrap();
    assert_eq!(a57.static_rf_pvf, a72.static_rf_pvf);

    let a9 = static_vs_dynamic(&w, CoreModel::A9, 0, 1, 1).unwrap();
    assert_ne!(a9.static_rf_pvf, a72.static_rf_pvf);
}
