#!/bin/bash
# Regenerates every table and figure; writes results/*.txt
set -u

# Run from wherever the script lives, not a hardcoded path.
ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
cd "$ROOT"
BIN=target/release

# Build first: a stale or missing binary must fail the whole run up
# front, not leave an empty results/*.txt with the error buried in
# progress.log. (--workspace: the figure binaries live in
# crates/vulnstack-bench, which the root package build does not cover.)
cargo build --release --workspace \
  || { echo "error: cargo build --release --workspace failed" >&2; exit 1; }

mkdir -p results

run() {
  name=$1; shift
  bin=$1
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found or not executable (for $name)" >&2
    echo "=== MISSING BINARY for $name: $bin ===" >> results/progress.log
    exit 1
  fi
  echo "=== starting $name at $(date +%T) ===" >> results/progress.log
  "$@" > results/$name.txt 2> results/$name.err
  rc=$?
  echo "=== finished $name at $(date +%T) rc=$rc ===" >> results/progress.log
  if [ $rc -ne 0 ]; then
    echo "error: $name failed with rc=$rc; see results/$name.err" >&2
    exit $rc
  fi
}
run table2 $BIN/table2_configs
VULNSTACK_FAULTS=200 run fig1 $BIN/fig1_motivation
VULNSTACK_FAULTS=120 run fig4 $BIN/fig4_pvf_svf_avf
VULNSTACK_FAULTS=120 run fig7 $BIN/fig7_pvf_per_fpm
VULNSTACK_FAULTS=120 run fig9 $BIN/fig9_fine_grained
VULNSTACK_FAULTS=200 run fig10 $BIN/fig10_case_sha
VULNSTACK_FAULTS=200 run fig11 $BIN/fig11_case_smooth
VULNSTACK_FAULTS=120 run fig5 $BIN/fig5_hvf_fpm
VULNSTACK_FAULTS=100 run fig8 $BIN/fig8_rpvf_vs_avf
VULNSTACK_FAULTS=100 run table3 $BIN/table3_opposite_pairs
VULNSTACK_FAULTS=100 run fig6 $BIN/fig6_fpm_distribution
VULNSTACK_FAULTS=80  run ablation_ace $BIN/ablation_ace
VULNSTACK_FAULTS=150 run ablation_svf_classes $BIN/ablation_svf_classes
VULNSTACK_FAULTS=120 run ablation_fpm_latency $BIN/ablation_fpm_latency
VULNSTACK_FAULTS=30  run ablation_avf_over_time $BIN/ablation_avf_over_time
# Also emits results/checkpoint_speedup.metrics.json and .trace.json
# (campaign telemetry + Perfetto timeline).
VULNSTACK_FAULTS=100 run ablation_checkpoint_speedup $BIN/ablation_checkpoint_speedup
echo ALL-DONE >> results/progress.log
