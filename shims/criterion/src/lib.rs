//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Benchmarks run as plain wall-clock measurements: a warm-up iteration
//! followed by `sample_size` timed iterations, reporting min/mean. There is
//! no statistical analysis, outlier rejection, or HTML report — the shim
//! exists so `cargo bench` keeps working (and `--all-targets` builds keep
//! type-checking) without registry access. See `shims/README.md`.

use std::time::{Duration, Instant};

/// Hints the optimiser to keep a value (stable-Rust best effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark: `function_id/parameter`.
#[derive(Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `function_id/parameter`.
    pub fn new<P: std::fmt::Display>(function_id: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_id}/{parameter}"),
        }
    }
}

/// Timing driver passed to the measured closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, &b.samples);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    /// Ends the group (reporting happens per-benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, samples: &[Duration]) {
        let _ = &self.criterion;
        if samples.is_empty() {
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            self.group_name,
            id.name,
            mean,
            min,
            samples.len()
        );
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group_name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("tiny");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.bench_function(BenchmarkId::new("noop", "x"), |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs() {
        benches();
    }
}
