//! Offline stand-in for the `serde` facade.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! but never serializes them through serde at runtime; this shim re-exports
//! no-op derive macros so those annotations compile without the real crate
//! (the build environment has no registry access). See `shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};
