//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over half-open and inclusive integer ranges.
//!
//! The generator is xoshiro256++ seeded via SplitMix64. Streams are
//! deterministic for a given seed (which the injection campaigns rely on)
//! but are *not* bit-identical to the real `rand::StdRng`; every consumer
//! in the tree treats the stream as an opaque deterministic source.
//! See `shims/README.md`.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic xoshiro256++ generator standing in for `rand::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // All-zero state would be degenerate; SplitMix64 cannot produce it
        // from any seed, but keep the guard for clarity.
        debug_assert!(s.iter().any(|&w| w != 0));
        rngs::StdRng { s }
    }
}

/// Draws a debiased uniform value in `[0, span)` (rejection sampling).
fn sample_below(rng: &mut rngs::StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64_impl();
        if v < zone {
            return v % span;
        }
    }
}

/// A type a uniform sample can be drawn for (integer types only).
pub trait SampleUniform: Copy {
    fn to_u64_offset(self, base: Self) -> u64;
    fn from_u64_offset(base: Self, off: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64_offset(self, base: Self) -> u64 {
                self.wrapping_sub(base) as u64
            }
            fn from_u64_offset(base: Self, off: u64) -> Self {
                base.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a uniform sample can be drawn from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        let span = self.end.to_u64_offset(self.start);
        assert!(span > 0, "cannot sample from an empty range");
        T::from_u64_offset(self.start, sample_below(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        let (start, end) = self.into_inner();
        let span = end.to_u64_offset(start);
        if span == u64::MAX {
            // Full-width inclusive range: every u64 is a valid sample.
            return T::from_u64_offset(start, rng.next_u64_impl());
        }
        T::from_u64_offset(start, sample_below(rng, span + 1))
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>;

    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: u64 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&x));
            let y: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
