//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace only uses serde derives as annotations — nothing in the
//! tree serializes through serde at runtime — so in the offline build the
//! derives expand to nothing. See `shims/README.md`.

use proc_macro::TokenStream;

/// Expands to nothing; the annotated type gains no impls.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the annotated type gains no impls.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
