//! Offline stand-in for `crossbeam::thread::scope`, implemented over
//! `std::thread::scope` (stable since Rust 1.63). Only the scoped-spawn
//! surface this workspace uses is provided. See `shims/README.md`.

pub mod thread {
    use std::any::Any;

    /// Result type matching `crossbeam::thread`'s panicking-child payloads.
    pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    ///
    /// Spawned closures receive a fresh `&Scope` argument (crossbeam's
    /// signature); nested spawning from inside a child is not supported by
    /// this shim and panics.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: Option<&'scope std::thread::Scope<'scope, 'env>>,
    }

    /// Join handle for a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> ScopeResult<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's `&Scope` argument is a
        /// detached handle that cannot spawn (all in-tree callers ignore
        /// it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self
                .inner
                .expect("crossbeam shim: nested spawn from a child thread is unsupported");
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner: None })))
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All children are joined before this returns.
    ///
    /// Unlike `crossbeam`, a child panic propagates out of `scope` (via
    /// `std::thread::scope`) instead of being collected into the `Err`
    /// variant; in-tree callers `.expect()` the result either way.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: Some(s) })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let sums: Vec<u64> = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(3)
                .map(|part| s.spawn(move |_| part.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        })
        .expect("scope");
        assert_eq!(sums.iter().sum::<u64>(), 36);
    }
}
