//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` macro, `any::<T>()`, integer/float range strategies,
//! tuple strategies, `prop::collection::vec`, `prop_assert*`/`prop_assume`
//! and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports its inputs (via the panic
//!   message of the `prop_assert*` that fired) but is not minimised.
//! * **Deterministic** — the RNG is seeded from the test function's name,
//!   so a failure always reproduces. Real proptest's default is
//!   nondeterministic seeds plus a regression file; determinism is a
//!   feature here (the repo's CI bar requires deterministic tests).
//!
//! See `shims/README.md` for the policy on these shims.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// RNG handed to strategies by the `proptest!` harness.
pub type TestRng = StdRng;

/// Builds the deterministic per-test RNG (seeded from the test name).
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Run configuration: only the case count is configurable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs the failure variant.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for a `Vec` with element strategy `S` and a length range.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy: `size` is a half-open length range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors proptest's `prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Defines property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    let __inputs = format!(concat!($(stringify!($arg), " = {:?}, "),*), $(&$arg),*);
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "property {} failed at case {}/{}: {}\n  inputs: {}",
                                stringify!($name), __case, __config.cases, __msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} != {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in -5i64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn tuples_and_vecs_generate(v in prop::collection::vec((any::<u16>(), 0u8..3), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (_, b) in v {
                prop_assert!(b < 3);
            }
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_form_compiles(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failures_panic_with_inputs() {
        // The inner `#[test]` attribute is unreachable by the harness here
        // (it is nested inside a function), which is exactly what we want:
        // we invoke the generated function by hand to observe the panic.
        #[allow(unnameable_test_items)]
        {
            proptest! {
                #[test]
                fn always_fails(x in 0u8..4) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        }
    }
}
