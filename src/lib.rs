//! Umbrella crate re-exporting the vulnstack workspace.
//!
//! See the individual crates for the real APIs:
//! [`vulnstack_core`] (analysis), [`vulnstack_gefin`] / [`vulnstack_llfi`]
//! (injection engines), [`vulnstack_microarch`] (simulators),
//! [`vulnstack_workloads`] (benchmarks), [`vulnstack_ft`] (hardening).

pub use vulnstack_compiler as compiler;
pub use vulnstack_core as core;
pub use vulnstack_ft as ft;
pub use vulnstack_gefin as gefin;
pub use vulnstack_isa as isa;
pub use vulnstack_kernel as kernel;
pub use vulnstack_llfi as llfi;
pub use vulnstack_microarch as microarch;
pub use vulnstack_vir as vir;
pub use vulnstack_workloads as workloads;
