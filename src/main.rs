//! `vulnstack` — command-line front end for the cross-layer vulnerability
//! platform.
//!
//! ```text
//! vulnstack list
//! vulnstack run      <workload> [--model A72]
//! vulnstack avf      <workload> [--model A72] [--structure RF] [--faults N] [--seed S]
//! vulnstack pvf      <workload> [--isa va64] [--mode wd|woi|wi] [--faults N] [--seed S]
//! vulnstack svf      <workload> [--faults N] [--seed S] [--breakdown] [--hardened]
//! vulnstack ace      <workload> [--model A72]
//! vulnstack analyze  <workload> [--isa va64]
//! vulnstack disasm   <workload> [--isa va64] [--limit N]
//! vulnstack harden   <workload>
//! ```

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_core::report::{pct, pct2, Table};
use vulnstack_core::{JournalOpts, ResumeMode, ResumeStats, RunPolicy, StreamOpts};
use vulnstack_gefin::{
    avf_campaign_models_streamed, default_threads, pvf_campaign_streamed, FuncPrepared,
    InjectionPlan, Prepared, PruneStats, PvfMode,
};
use vulnstack_isa::Isa;
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::{CoreModel, FaultModel};
use vulnstack_workloads::{Workload, WorkloadId};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage:");
    eprintln!("  vulnstack list");
    eprintln!("  vulnstack run     <workload> [--model A72]");
    eprintln!("  vulnstack avf     <workload> [--model A72] [--structure RF|LSQ|L1i|L1d|L2]");
    eprintln!("                    [--faults N] [--seed S] [--plan sampled|pruned|exhaustive]");
    eprintln!("                    [--at CYCLE] [--models M1,M2|all] [--json PATH]");
    eprintln!("                    [--journal PATH [--resume]]");
    eprintln!("                    (models: bit-flip byte-corrupt instr-skip stuck-at)");
    eprintln!("  vulnstack pvf     <workload> [--isa va32|va64] [--mode wd|woi|wi]");
    eprintln!("                    [--faults N] [--seed S] [--journal PATH [--resume]]");
    eprintln!("  vulnstack svf     <workload> [--faults N] [--seed S] [--breakdown] [--hardened]");
    eprintln!("                    [--journal PATH [--resume]]");
    eprintln!("  vulnstack ace     <workload> [--model A72]");
    eprintln!("  vulnstack analyze <workload> [--isa va32|va64] [--hardened] [--json PATH]");
    eprintln!("  vulnstack analyze attack <kernel|workload> [--isa va32|va64] [--hardened]");
    eprintln!("                    [--json PATH]");
    eprintln!("  vulnstack analyze prune-audit <workload> [--model A72] [--hardened]");
    eprintln!("                    [--faults N] [--seed S] [--json PATH]");
    eprintln!("  vulnstack disasm  <workload> [--isa va64] [--limit N]");
    eprintln!("  vulnstack harden  <workload>");
    eprintln!("  vulnstack ir      <workload> [--hardened]");
    eprintln!("  vulnstack trace   <workload> [--model A72] [--limit N]");
    eprintln!("  vulnstack trace   <workload> --structure RF|LSQ|L1i|L1d|L2");
    eprintln!("                    [--cycle C --bit B | --site K [--faults N] [--seed S]]");
    eprintln!("  vulnstack serve   --state DIR [--listen HOST:PORT|unix:PATH]");
    eprintln!("                    [--slots N] [--threads N]");
    eprintln!(
        "  vulnstack client  <addr> run <workload> [--engine avf|pvf|sweep|svf|svf-hardened]"
    );
    eprintln!("                    [--priority low|normal|high] [spec flags] [--json PATH]");
    eprintln!("  vulnstack client  <addr> list|shutdown | status|cancel --handle H");
}

struct Opts {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

fn parse_opts(rest: &[String]) -> Result<Opts, String> {
    let mut flags = HashMap::new();
    let mut switches = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        if let Some(name) = a.strip_prefix("--") {
            // Value-less switches.
            if matches!(name, "breakdown" | "hardened" | "resume") {
                switches.push(name.to_string());
                i += 1;
                continue;
            }
            let v = rest
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), v.clone());
            i += 2;
        } else {
            return Err(format!("unexpected argument {a}"));
        }
    }
    Ok(Opts { flags, switches })
}

impl Opts {
    fn model(&self) -> Result<CoreModel, String> {
        let name = self.flags.get("model").map_or("A72", String::as_str);
        CoreModel::ALL
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| format!("unknown model {name}"))
    }

    fn isa(&self) -> Result<Isa, String> {
        match self.flags.get("isa").map_or("va64", String::as_str) {
            "va32" => Ok(Isa::Va32),
            "va64" => Ok(Isa::Va64),
            other => Err(format!("unknown isa {other}")),
        }
    }

    fn faults(&self) -> Result<usize, String> {
        match self.flags.get("faults") {
            None => Ok(vulnstack_gefin::default_faults(150)),
            Some(v) => v.parse().map_err(|_| format!("bad fault count {v}")),
        }
    }

    fn seed(&self) -> Result<u64, String> {
        match self.flags.get("seed") {
            None => Ok(2021),
            Some(v) => v.parse().map_err(|_| format!("bad seed {v}")),
        }
    }

    fn limit(&self) -> Result<usize, String> {
        match self.flags.get("limit") {
            None => Ok(48),
            Some(v) => v.parse().map_err(|_| format!("bad limit {v}")),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The injection plan. `--plan sampled|pruned|exhaustive` wins;
    /// without the flag the `VULNSTACK_PRUNE` environment knob decides
    /// between sampled and pruned (default: sampled). `--plan
    /// exhaustive` enumerates every (site, model) pair at one fixed
    /// cycle (`--at`, default mid-run) and always executes through the
    /// pruner.
    fn plan(&self, faults: usize, seed: u64, mid_cycle: u64) -> Result<InjectionPlan, String> {
        let at = match self.flags.get("at") {
            None => None,
            Some(v) => Some(
                v.parse::<u64>()
                    .map_err(|_| format!("bad injection cycle {v}"))?,
            ),
        };
        let plan = match self.flags.get("plan").map(String::as_str) {
            None if vulnstack_gefin::prune_default() => InjectionPlan::Pruned { n: faults, seed },
            None => InjectionPlan::Sampled { n: faults, seed },
            Some("sampled") => InjectionPlan::Sampled { n: faults, seed },
            Some("pruned") => InjectionPlan::Pruned { n: faults, seed },
            Some("exhaustive") => InjectionPlan::Exhaustive {
                cycle: at.unwrap_or(mid_cycle),
            },
            Some(other) => {
                return Err(format!(
                    "unknown plan {other} (expected sampled|pruned|exhaustive)"
                ))
            }
        };
        if at.is_some() && !matches!(plan, InjectionPlan::Exhaustive { .. }) {
            return Err("--at only applies to --plan exhaustive".to_string());
        }
        Ok(plan)
    }

    /// The fault-model set from `--models` (comma-separated names, or
    /// `all`); defaults to the classic single-bit transient flip.
    fn models(&self) -> Result<Vec<FaultModel>, String> {
        match self.flags.get("models").map(String::as_str) {
            None => Ok(vec![FaultModel::BitFlip]),
            Some("all") => Ok(FaultModel::ALL.to_vec()),
            Some(list) => list
                .split(',')
                .map(|n| {
                    FaultModel::from_name(n.trim()).ok_or_else(|| {
                        format!(
                            "unknown fault model {n} (expected \
                             bit-flip|byte-corrupt|instr-skip|stuck-at, or all)"
                        )
                    })
                })
                .collect(),
        }
    }

    /// Journaling options from `--journal PATH` / `--resume`: `--journal`
    /// alone resumes an existing journal or starts one; adding `--resume`
    /// insists the journal already exists (a typo'd path fails loudly
    /// instead of silently restarting the campaign from scratch).
    fn journal<'a>(&'a self, workload: &'a str) -> Result<Option<JournalOpts<'a>>, String> {
        match self.flags.get("journal") {
            None if self.switch("resume") => Err("--resume requires --journal PATH".to_string()),
            None => Ok(None),
            Some(p) => Ok(Some(JournalOpts {
                path: Path::new(p),
                mode: if self.switch("resume") {
                    ResumeMode::ResumeRequired
                } else {
                    ResumeMode::ResumeOrStart
                },
                policy: RunPolicy::default(),
                workload,
            })),
        }
    }
}

/// Prints the resume accounting and any quarantined sites of a journaled
/// campaign.
fn report_resume(journal: &Path, stats: &ResumeStats, quarantined: &[vulnstack_core::Quarantine]) {
    println!(
        "journal {}: {} replayed, {} executed{}",
        journal.display(),
        stats.replayed,
        stats.executed,
        if stats.truncated_bytes > 0 {
            format!(" ({} torn bytes truncated)", stats.truncated_bytes)
        } else {
            String::new()
        }
    );
    for q in quarantined {
        eprintln!(
            "warning: site {} quarantined after {} attempt(s): {}",
            q.index, q.attempts, q.message
        );
    }
}

// The per-structure/per-model JSON report builder lives in
// `vulnstack_gefin::report` so the serve daemon and this CLI produce
// byte-identical files from the same campaign results.
use vulnstack_gefin::{avf_report_json, ModelReport};

fn workload(name: &str, hardened: bool) -> Result<Workload, String> {
    let id = WorkloadId::from_name(name).ok_or_else(|| format!("unknown workload {name}"))?;
    let base = id.build();
    if hardened {
        let module = vulnstack_ft::harden(&base.module).map_err(|e| e.to_string())?;
        Ok(Workload { module, ..base })
    } else {
        Ok(base)
    }
}

/// Builds the attack-surface report for `target` — the literal string
/// `kernel` (boot stub + trap handler, the syscall path) or a workload
/// name — and prints/writes it per `--json`.
fn analyze_attack(target: &str, opts: &Opts) -> Result<(), String> {
    use vulnstack_analyze::{attack_surface, build_cfg_segments, TextSegment};
    let isa = opts.isa()?;
    let report = if target == "kernel" {
        let k = vulnstack_kernel::build_kernel(isa).map_err(|e| e.to_string())?;
        let segs = [
            TextSegment {
                name: "kboot".to_string(),
                start_word: vulnstack_kernel::memmap::KERNEL_BOOT / 4,
                words: k.boot,
            },
            TextSegment {
                name: "ktrap".to_string(),
                start_word: vulnstack_kernel::memmap::TRAP_VEC / 4,
                words: k.trap,
            },
        ];
        attack_surface(&build_cfg_segments(isa, &segs), "kernel")
    } else {
        let w = workload(target, opts.switch("hardened"))?;
        let compiled =
            compile(&w.module, isa, &CompileOpts::default()).map_err(|e| e.to_string())?;
        attack_surface(&vulnstack_analyze::build_cfg(&compiled), target)
    };
    if let Some(path) = opts.flags.get("json") {
        vulnstack_core::report::write_atomic(path, report.to_json().as_bytes())
            .map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    println!("{}", report.summary());
    for line in report.finding_lines() {
        println!("{line}");
    }
    let mut t = Table::new(&[
        "function",
        "instrs",
        "reach:branch",
        "reach:addr",
        "reach:sysarg",
        "stuck:branch",
    ]);
    for s in &report.funcs {
        t.row(&[
            s.name.clone(),
            s.reachable_instrs.to_string(),
            s.reach_points[0].to_string(),
            s.reach_points[1].to_string(),
            s.reach_points[2].to_string(),
            s.stuck_reach_points[0].to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(reach counts are (instruction, register) points whose corruption reaches the sink)");
    Ok(())
}

/// Audits the static pruning oracle against the dynamic class table for
/// one workload: every statically-dead site must be dynamically dead.
fn analyze_prune_audit(target: &str, opts: &Opts) -> Result<(), String> {
    let w = workload(target, opts.switch("hardened"))?;
    let model = opts.model()?;
    let prep = Prepared::new(&w, model).map_err(|e| e.to_string())?;
    let oracle = vulnstack_gefin::static_classifier(&prep.image);
    let nphys = prep.cfg.phys_regs as usize;
    let table = vulnstack_gefin::ClassTable::build(&prep, HwStructure::RegisterFile);
    let dynamic_live = table
        .rf_dynamic_live_fraction()
        .ok_or("RF table has no live fraction")?;
    let static_dead = oracle.static_dead_fraction(nphys);
    let compiled =
        compile(&w.module, prep.cfg.isa, &CompileOpts::default()).map_err(|e| e.to_string())?;
    let rf_pvf = vulnstack_analyze::analyze(&compiled).pvf.rf_pvf;

    // Sample the lattice on real campaign sites.
    let sites = vulnstack_gefin::draw_sites(
        &prep,
        HwStructure::RegisterFile,
        opts.faults()?,
        opts.seed()?,
    );
    let mut static_dead_sites = 0u64;
    let mut dynamic_dead_sites = 0u64;
    let mut violations = 0u64;
    for &(c, b) in &sites {
        let s_dead = oracle.rf_bit_dead(b, nphys);
        let d_dead = table.classify(c, b) == vulnstack_gefin::SiteClass::DeadMasked;
        static_dead_sites += s_dead as u64;
        dynamic_dead_sites += d_dead as u64;
        violations += (s_dead && !d_dead) as u64;
    }

    let dead_regs: Vec<String> = oracle.dead_regs().iter().map(|r| r.0.to_string()).collect();
    println!(
        "{target} on {model}: {} of {nphys} physical registers statically dead (arch regs: {})",
        dead_regs.len(),
        dead_regs.join(",")
    );
    println!(
        "lattice: static-dead {} <= dynamic-dead {} of {} sampled sites ({} violations)",
        static_dead_sites,
        dynamic_dead_sites,
        sites.len(),
        violations
    );
    println!(
        "fractions: static RF PVF {} >= dynamic live {} ; static dead {}",
        pct2(rf_pvf),
        pct2(dynamic_live),
        pct2(static_dead)
    );
    if let Some(path) = opts.flags.get("json") {
        let json = format!(
            "{{\n  \"workload\": \"{target}\", \"model\": \"{model}\", \"nphys\": {nphys},\n  \
             \"static_dead_regs\": [{}],\n  \"static_dead_fraction\": {static_dead:.6},\n  \
             \"dynamic_rf_live_fraction\": {dynamic_live:.6},\n  \"static_rf_pvf\": {rf_pvf:.6},\n  \
             \"sampled_sites\": {},\n  \"static_dead_sites\": {static_dead_sites},\n  \
             \"dynamic_dead_sites\": {dynamic_dead_sites},\n  \"violations\": {violations}\n}}\n",
            dead_regs.join(", "),
            sites.len(),
        );
        vulnstack_core::report::write_atomic(path, json.as_bytes()).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    if violations > 0 {
        return Err(format!(
            "soundness violation: {violations} statically-dead sites were not dynamically dead"
        ));
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map_or("help", String::as_str);
    let name = args.get(1).cloned().unwrap_or_default();
    // `analyze` sub-subcommands shift the target one slot right; they
    // must dispatch before the positional target reaches `parse_opts`.
    if cmd == "analyze" && matches!(name.as_str(), "attack" | "prune-audit") {
        let target = args
            .get(2)
            .cloned()
            .ok_or_else(|| format!("analyze {name} needs a target"))?;
        let opts = parse_opts(if args.len() > 3 { &args[3..] } else { &[] })?;
        return if name == "attack" {
            analyze_attack(&target, &opts)
        } else {
            analyze_prune_audit(&target, &opts)
        };
    }
    // The serving subcommands own their argument grammar (extra
    // positionals, `unix:` addresses) — forward the raw slice.
    if cmd == "serve" {
        return vulnstack_serve::serve_main(&args[1..]);
    }
    if cmd == "client" {
        return vulnstack_serve::client_main(&args[1..]);
    }
    let rest = if args.len() > 2 { &args[2..] } else { &[] };
    let opts = parse_opts(rest)?;

    match cmd {
        "list" => {
            let mut t = Table::new(&["workload", "input bytes", "output bytes", "IR instrs"]);
            for id in WorkloadId::ALL {
                let w = id.build();
                t.row(&[
                    id.name().into(),
                    w.input.len().to_string(),
                    w.expected_output.len().to_string(),
                    w.module.num_instrs().to_string(),
                ]);
            }
            println!("{}", t.render());
            println!("core models: A9, A15 (va32); A57, A72 (va64)");
            Ok(())
        }
        "run" => {
            let w = workload(&name, opts.switch("hardened"))?;
            let model = opts.model()?;
            let prep = Prepared::new(&w, model).map_err(|e| e.to_string())?;
            println!(
                "{name} on {model}: {} instructions, {} cycles (IPC {:.2}), output {} bytes OK",
                prep.golden.instrs,
                prep.golden.cycles,
                prep.golden.instrs as f64 / prep.golden.cycles as f64,
                prep.golden.output.len()
            );
            Ok(())
        }
        "avf" => {
            let hardened = opts.switch("hardened");
            let w = workload(&name, hardened)?;
            let label = if hardened {
                format!("{name}+ft")
            } else {
                name.clone()
            };
            let model = opts.model()?;
            let faults = opts.faults()?;
            let seed = opts.seed()?;
            let prep = Prepared::new(&w, model).map_err(|e| e.to_string())?;
            let structures: Vec<HwStructure> = match opts.flags.get("structure") {
                None => HwStructure::ALL.to_vec(),
                Some(s) => vec![HwStructure::ALL
                    .into_iter()
                    .find(|x| x.name().eq_ignore_ascii_case(s))
                    .ok_or_else(|| format!("unknown structure {s}"))?],
            };
            let journal = opts.journal(&label)?;
            if journal.is_some() && !opts.flags.contains_key("structure") {
                // A journal records exactly one campaign; one file cannot
                // hold the whole all-structures sweep.
                return Err("--journal requires --structure (one journal per campaign)".into());
            }
            let mut t = Table::new(&[
                "structure",
                "bits",
                "masked",
                "SDC",
                "Crash",
                "detected",
                "AVF",
                "HVF",
            ]);
            let models = opts.models()?;
            let plan = opts.plan(faults, seed, prep.golden.cycles / 2)?;
            // Single-model sampled/pruned campaigns print the legacy
            // single-table report; multi-model or exhaustive campaigns
            // add per-model tables. Either way every campaign streams
            // through the bounded sink (records never collect in RAM),
            // and the streamed engine keeps the legacy journal
            // fingerprints bit-for-bit.
            let legacy = models == [FaultModel::BitFlip]
                && !matches!(plan, InjectionPlan::Exhaustive { .. });
            let mut resume_report: Option<(ResumeStats, Vec<vulnstack_core::Quarantine>)> = None;
            let mut prune_report: Vec<(&'static str, PruneStats)> = Vec::new();
            let mut model_report: Vec<ModelReport> = Vec::new();
            for st in structures {
                let (r, stats) = avf_campaign_models_streamed(
                    &prep,
                    st,
                    &plan,
                    &models,
                    default_threads(),
                    journal.as_ref(),
                    StreamOpts::from_env(),
                    None,
                )
                .map_err(|e| e.to_string())?;
                if let Some(s) = stats {
                    prune_report.push((st.name(), s));
                }
                t.row(&[
                    st.name().into(),
                    r.bits.to_string(),
                    r.tally.masked.to_string(),
                    r.tally.sdc.to_string(),
                    r.tally.crash.to_string(),
                    r.tally.detected.to_string(),
                    pct2(r.avf().total()),
                    pct(r.hvf()),
                ]);
                if journal.is_some() {
                    resume_report = Some((r.stats, r.quarantined));
                }
                model_report.push((st.name(), r.per_model));
            }
            println!("{}", t.render());
            if !legacy {
                for (st, tallies) in &model_report {
                    let mut mt = Table::new(&[
                        "model",
                        "injections",
                        "masked",
                        "SDC",
                        "Crash",
                        "detected",
                        "AVF",
                        "HVF",
                    ]);
                    for (m, tally, fpm) in tallies {
                        mt.row(&[
                            m.name().into(),
                            tally.total().to_string(),
                            tally.masked.to_string(),
                            tally.sdc.to_string(),
                            tally.crash.to_string(),
                            tally.detected.to_string(),
                            pct2(tally.vf().total()),
                            pct(fpm.hvf()),
                        ]);
                    }
                    println!("{st} per-model:");
                    println!("{}", mt.render());
                }
            }
            if let Some(path) = opts.flags.get("json") {
                vulnstack_core::report::write_atomic(
                    path,
                    avf_report_json(&label, &plan, &model_report).as_bytes(),
                )
                .map_err(|e| e.to_string())?;
                println!("wrote {path}");
            }
            for (st, s) in &prune_report {
                println!(
                    "{st} pruning: {} sites = {} dead ({} static) + {} memoized ({} pilots) + \
                     {} singletons; {} early-terminated, {} proven hangs",
                    s.sites,
                    s.dead_masked,
                    s.static_dead,
                    s.memo_hits,
                    s.pilot_runs,
                    s.singleton_runs,
                    s.early_terminated,
                    s.runaway_terminated
                );
            }
            if let (Some(jopts), Some((stats, quarantined))) = (&journal, &resume_report) {
                report_resume(jopts.path, stats, quarantined);
            }
            Ok(())
        }
        "pvf" => {
            let hardened = opts.switch("hardened");
            let w = workload(&name, hardened)?;
            let label = if hardened {
                format!("{name}+ft")
            } else {
                name.clone()
            };
            let isa = opts.isa()?;
            let faults = opts.faults()?;
            let seed = opts.seed()?;
            let mode = match opts.flags.get("mode").map_or("wd", String::as_str) {
                "wd" => PvfMode::Wd,
                "woi" => PvfMode::Woi,
                "wi" => PvfMode::Wi,
                other => return Err(format!("unknown mode {other}")),
            };
            let prep = FuncPrepared::new(&w, isa).map_err(|e| e.to_string())?;
            let journal = opts.journal(&label)?;
            let out = pvf_campaign_streamed(
                &prep,
                mode,
                faults,
                seed,
                default_threads(),
                journal.as_ref(),
                StreamOpts::from_env(),
                None,
            )
            .map_err(|e| e.to_string())?;
            if let Some(jopts) = &journal {
                report_resume(jopts.path, &out.stats, &out.quarantined);
            }
            let vf = out.tally.vf();
            println!(
                "{name} PVF[{mode}] on {isa}: SDC {} Crash {} detected {} total {}",
                pct(vf.sdc),
                pct(vf.crash),
                pct(vf.detected),
                pct(vf.total())
            );
            Ok(())
        }
        "svf" => {
            let hardened = opts.switch("hardened");
            let w = workload(&name, hardened)?;
            let label = if hardened {
                format!("{name}+ft")
            } else {
                name.clone()
            };
            let faults = opts.faults()?;
            let seed = opts.seed()?;
            let journal = opts.journal(&label)?;
            if opts.switch("breakdown") {
                if journal.is_some() {
                    // The breakdown path re-runs every injection to read
                    // its landing site; journaled records don't carry it.
                    return Err("--journal is not supported with --breakdown".into());
                }
                let b = vulnstack_llfi::svf_breakdown(&w.module, &w.input, faults, seed);
                let mut t = Table::new(&["class", "masked", "SDC", "Crash", "detected", "SVF"]);
                for (class, tally) in &b {
                    t.row(&[
                        class.name().into(),
                        tally.masked.to_string(),
                        tally.sdc.to_string(),
                        tally.crash.to_string(),
                        tally.detected.to_string(),
                        pct(tally.vf().total()),
                    ]);
                }
                println!("{}", t.render());
            } else {
                let out = vulnstack_llfi::svf_campaign_streamed(
                    &w.module,
                    &w.input,
                    &w.expected_output,
                    faults,
                    seed,
                    default_threads(),
                    journal.as_ref(),
                    StreamOpts::from_env(),
                    None,
                )
                .map_err(|e| e.to_string())?;
                if let Some(jopts) = &journal {
                    report_resume(jopts.path, &out.stats, &out.quarantined);
                }
                let vf = out.tally.vf();
                println!(
                    "{name} SVF: SDC {} Crash {} detected {} total {}",
                    pct(vf.sdc),
                    pct(vf.crash),
                    pct(vf.detected),
                    pct(vf.total())
                );
            }
            Ok(())
        }
        "ace" => {
            let w = workload(&name, opts.switch("hardened"))?;
            let model = opts.model()?;
            let prep = Prepared::new(&w, model).map_err(|e| e.to_string())?;
            let ace = vulnstack_gefin::ace_analysis(&prep);
            println!(
                "{name} on {model}: ACE RF AVF ≈ {} | ACE LSQ AVF ≈ {} ({} cycles, analytical)",
                pct(ace.rf_avf),
                pct(ace.lsq_avf),
                ace.cycles
            );
            println!("note: ACE is a fast upper bound; compare with `vulnstack avf`.");
            Ok(())
        }
        "analyze" => {
            let w = workload(&name, opts.switch("hardened"))?;
            let isa = opts.isa()?;
            let compiled =
                compile(&w.module, isa, &CompileOpts::default()).map_err(|e| e.to_string())?;
            let sa = vulnstack_analyze::analyze(&compiled);
            if let Some(path) = opts.flags.get("json") {
                vulnstack_core::report::write_atomic(path, sa.to_json().as_bytes())
                    .map_err(|e| e.to_string())?;
                println!("wrote {path}");
            }
            print!("{}", sa.summary());
            let mut t = Table::new(&["function", "instrs", "blocks", "max depth", "static PVF"]);
            for (f, (fname, fpvf, _)) in sa.cfg.funcs.iter().zip(sa.pvf.per_func.iter()) {
                let depth = f.blocks.iter().map(|b| b.loop_depth).max().unwrap_or(0);
                t.row(&[
                    fname.clone(),
                    f.instrs.len().to_string(),
                    f.blocks.len().to_string(),
                    depth.to_string(),
                    pct2(*fpvf),
                ]);
            }
            println!("{}", t.render());
            let mut regs: Vec<(usize, f64)> = sa.pvf.per_reg.iter().copied().enumerate().collect();
            regs.sort_by(|a, b| b.1.total_cmp(&a.1));
            let top: Vec<String> = regs
                .iter()
                .take(6)
                .map(|(r, p)| format!("r{r}={}", pct2(*p)))
                .collect();
            println!("hottest registers: {}", top.join(" "));
            if sa.lints.is_empty() {
                println!("lint: clean");
            } else {
                for l in &sa.lints {
                    println!("lint: {l}");
                }
            }
            println!("(static analysis only: zero instructions executed)");
            Ok(())
        }
        "disasm" => {
            let w = workload(&name, opts.switch("hardened"))?;
            let isa = opts.isa()?;
            let limit = opts.limit()?;
            let compiled =
                compile(&w.module, isa, &CompileOpts::default()).map_err(|e| e.to_string())?;
            let bytes = compiled.text_bytes();
            let lines = vulnstack_isa::disasm::disasm_bytes(
                &bytes[..(limit * 4).min(bytes.len())],
                vulnstack_kernel::memmap::USER_TEXT as u64,
                isa,
            );
            for l in lines {
                println!("{l}");
            }
            println!("... ({} instructions total)", compiled.text.len());
            Ok(())
        }
        "trace" => {
            let w = workload(&name, opts.switch("hardened"))?;
            let model = opts.model()?;
            let limit = opts.limit()?;
            if let Some(s) = opts.flags.get("structure") {
                // Fault-lifetime replay: inject one fault and print its
                // full event log (injection → consumption → squash /
                // repair → architectural corruption → outcome).
                let st = HwStructure::ALL
                    .into_iter()
                    .find(|x| x.name().eq_ignore_ascii_case(s))
                    .ok_or_else(|| format!("unknown structure {s}"))?;
                let prep = Prepared::new(&w, model).map_err(|e| e.to_string())?;
                let (cycle, bit) = match opts.flags.get("site") {
                    Some(k) => {
                        // Replay site K of the campaign `vulnstack avf`
                        // would run with the same --faults/--seed.
                        let k: usize = k.parse().map_err(|_| format!("bad site {k}"))?;
                        let sites =
                            vulnstack_gefin::draw_sites(&prep, st, opts.faults()?, opts.seed()?);
                        *sites.get(k).ok_or_else(|| {
                            format!("site {k} out of range (campaign has {})", sites.len())
                        })?
                    }
                    None => {
                        let cycle = match opts.flags.get("cycle") {
                            Some(v) => v.parse().map_err(|_| format!("bad cycle {v}"))?,
                            None => prep.golden.cycles / 2,
                        };
                        let bit = match opts.flags.get("bit") {
                            Some(v) => v.parse().map_err(|_| format!("bad bit {v}"))?,
                            None => 0,
                        };
                        (cycle, bit)
                    }
                };
                let (rec, trace) = vulnstack_gefin::run_one_traced(
                    &prep,
                    st,
                    cycle,
                    bit,
                    vulnstack_gefin::InjectEngine::Checkpointed,
                    limit.max(16),
                );
                println!(
                    "{name} on {model}: inject {} bit {bit} @ cycle {cycle} -> {:?} (FPM {})",
                    st.name(),
                    rec.effect,
                    rec.fpm.map_or("none".into(), |f| f.to_string()),
                );
                let trace = trace.ok_or("no trace recorded")?;
                if trace.dropped() > 0 {
                    println!("({} early events dropped from the ring)", trace.dropped());
                }
                for ev in trace.events() {
                    println!("  cycle {:>10}: {}", ev.cycle, ev.kind);
                }
                let c = trace.counts();
                println!(
                    "consumed {} | repaired {} | squashed {} | tainted stores {}",
                    c.consumed, c.repaired, c.squashed, c.tainted_store_commits
                );
                return Ok(());
            }
            let cfg = model.config();
            let compiled =
                compile(&w.module, cfg.isa, &CompileOpts::default()).map_err(|e| e.to_string())?;
            let image = vulnstack_kernel::SystemImage::build(&compiled, &w.input)
                .map_err(|e| e.to_string())?;
            let mut core = vulnstack_microarch::OooCore::new(&cfg, &image);
            core.enable_trace(limit);
            while core.trace().len() < limit && !core.ended() && core.cycle() < 10_000_000 {
                core.step_cycle();
            }
            for (pc, instr) in core.trace() {
                println!("{pc:#010x}: {instr}");
            }
            Ok(())
        }
        "ir" => {
            let w = workload(&name, opts.switch("hardened"))?;
            println!("{}", w.module);
            Ok(())
        }
        "harden" => {
            let base = workload(&name, false)?;
            let hard = workload(&name, true)?;
            let bi = vulnstack_vir::interp::Interpreter::new(&base.module)
                .with_input(base.input.clone())
                .run()
                .map_err(|e| e.to_string())?;
            let hi = vulnstack_vir::interp::Interpreter::new(&hard.module)
                .with_input(hard.input.clone())
                .run()
                .map_err(|e| e.to_string())?;
            println!(
                "{name}: static {} -> {} IR instrs; dynamic {} -> {} ({:.2}x); output identical: {}",
                base.module.num_instrs(),
                hard.module.num_instrs(),
                bi.dyn_instrs,
                hi.dyn_instrs,
                hi.dyn_instrs as f64 / bi.dyn_instrs as f64,
                bi.output == hi.output
            );
            Ok(())
        }
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_switches() {
        let o = parse_opts(&sv(&["--model", "A9", "--faults", "64", "--breakdown"])).unwrap();
        assert_eq!(o.model().unwrap(), CoreModel::A9);
        assert_eq!(o.faults().unwrap(), 64);
        assert!(o.switch("breakdown"));
        assert!(!o.switch("hardened"));
    }

    #[test]
    fn defaults_are_sensible() {
        let o = parse_opts(&[]).unwrap();
        assert_eq!(o.model().unwrap(), CoreModel::A72);
        assert_eq!(o.isa().unwrap(), Isa::Va64);
        assert_eq!(o.seed().unwrap(), 2021);
    }

    #[test]
    fn rejects_missing_values_and_junk() {
        assert!(parse_opts(&sv(&["--model"])).is_err());
        assert!(parse_opts(&sv(&["stray"])).is_err());
        let o = parse_opts(&sv(&["--model", "Z80"])).unwrap();
        assert!(o.model().is_err());
        let o = parse_opts(&sv(&["--isa", "mips"])).unwrap();
        assert!(o.isa().is_err());
    }

    #[test]
    fn plan_flag_parses_and_rejects_junk() {
        let o = parse_opts(&sv(&["--plan", "pruned"])).unwrap();
        assert_eq!(
            o.plan(10, 7, 100).unwrap(),
            InjectionPlan::Pruned { n: 10, seed: 7 }
        );
        let o = parse_opts(&sv(&["--plan", "sampled"])).unwrap();
        assert_eq!(
            o.plan(10, 7, 100).unwrap(),
            InjectionPlan::Sampled { n: 10, seed: 7 }
        );
        let o = parse_opts(&sv(&["--plan", "psychic"])).unwrap();
        assert!(o.plan(10, 7, 100).is_err());
        // Without the flag the VULNSTACK_PRUNE knob decides; the test
        // runner does not set it, so the default is the sampled plan.
        assert_eq!(
            parse_opts(&[]).unwrap().plan(10, 7, 100).unwrap(),
            InjectionPlan::Sampled { n: 10, seed: 7 }
        );
    }

    #[test]
    fn exhaustive_plan_takes_an_injection_cycle() {
        // Default: mid-run.
        let o = parse_opts(&sv(&["--plan", "exhaustive"])).unwrap();
        assert_eq!(
            o.plan(10, 7, 100).unwrap(),
            InjectionPlan::Exhaustive { cycle: 100 }
        );
        // Explicit --at pins the cycle.
        let o = parse_opts(&sv(&["--plan", "exhaustive", "--at", "42"])).unwrap();
        assert_eq!(
            o.plan(10, 7, 100).unwrap(),
            InjectionPlan::Exhaustive { cycle: 42 }
        );
        // --at is meaningless for sampled/pruned plans.
        let o = parse_opts(&sv(&["--plan", "pruned", "--at", "42"])).unwrap();
        assert!(o.plan(10, 7, 100).is_err());
        let o = parse_opts(&sv(&["--plan", "exhaustive", "--at", "soon"])).unwrap();
        assert!(o.plan(10, 7, 100).is_err());
    }

    #[test]
    fn models_flag_parses_lists_and_rejects_junk() {
        assert_eq!(
            parse_opts(&[]).unwrap().models().unwrap(),
            vec![FaultModel::BitFlip]
        );
        let o = parse_opts(&sv(&["--models", "all"])).unwrap();
        assert_eq!(o.models().unwrap(), FaultModel::ALL.to_vec());
        let o = parse_opts(&sv(&["--models", "stuck-at, bit-flip"])).unwrap();
        assert_eq!(
            o.models().unwrap(),
            vec![FaultModel::StuckAt, FaultModel::BitFlip]
        );
        let o = parse_opts(&sv(&["--models", "gamma-ray"])).unwrap();
        assert!(o.models().is_err());
    }

    #[test]
    fn journal_flags_parse_and_validate() {
        let o = parse_opts(&sv(&["--journal", "j.log", "--resume"])).unwrap();
        let j = o.journal("crc32").unwrap().unwrap();
        assert_eq!(j.mode, ResumeMode::ResumeRequired);
        assert_eq!(j.path, Path::new("j.log"));
        assert_eq!(j.workload, "crc32");

        let o = parse_opts(&sv(&["--journal", "j.log"])).unwrap();
        assert_eq!(
            o.journal("x").unwrap().unwrap().mode,
            ResumeMode::ResumeOrStart
        );

        let o = parse_opts(&sv(&["--resume"])).unwrap();
        assert!(o.journal("x").is_err(), "--resume alone must be rejected");
        assert!(parse_opts(&[]).unwrap().journal("x").unwrap().is_none());
    }

    #[test]
    fn workload_lookup_and_hardening() {
        assert!(workload("sha", false).is_ok());
        assert!(workload("nope", false).is_err());
        let h = workload("crc32", true).unwrap();
        let b = workload("crc32", false).unwrap();
        assert!(h.module.num_instrs() > 2 * b.module.num_instrs());
    }
}
