//! The fault-tolerance trade-off in miniature: harden a workload, show
//! that the software-level view improves dramatically while the
//! cross-layer view degrades — the paper's central pitfall.
//!
//! ```text
//! cargo run --release --example ft_tradeoff
//! ```

use vulnstack_core::report::{pct, pct2, Table};
use vulnstack_ft::harden;
use vulnstack_gefin::{default_threads, Prepared};
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::{Workload, WorkloadId};

fn main() {
    let faults = 100;
    let threads = default_threads();
    let base = WorkloadId::Sha.build();
    let hard = Workload {
        module: harden(&base.module).unwrap(),
        ..base.clone()
    };

    // Software-level view (what a developer using an LLFI-style tool
    // sees).
    let svf_base = vulnstack_llfi::svf_campaign(
        &base.module,
        &base.input,
        &base.expected_output,
        faults,
        7,
        threads,
    );
    let svf_hard = vulnstack_llfi::svf_campaign(
        &hard.module,
        &hard.input,
        &hard.expected_output,
        faults,
        7,
        threads,
    );

    // Cross-layer view (ground truth): weighted over the five structures.
    let weighted = |w: &Workload| {
        let prep = Prepared::new(w, CoreModel::A72).expect("prepare");
        let mut structs = Vec::new();
        for st in HwStructure::ALL {
            let r = vulnstack_gefin::avf_campaign(&prep, st, faults, 7, threads);
            structs.push(vulnstack_core::stack::StructureAvf {
                structure: st,
                bits: r.bits,
                tally: r.tally,
            });
        }
        (
            vulnstack_core::stack::WeightedAvf::new(structs).weighted(),
            prep.golden.cycles,
        )
    };
    let (avf_base, cyc_base) = weighted(&base);
    let (avf_hard, cyc_hard) = weighted(&hard);

    let mut t = Table::new(&["metric", "unprotected", "hardened", "change"]);
    let sv_b = svf_base.vf().total();
    let sv_h = svf_hard.vf().total();
    t.row(&[
        "SVF (software view)".into(),
        pct(sv_b),
        pct(sv_h),
        format!(
            "{:.1}x lower",
            if sv_h > 0.0 {
                sv_b / sv_h
            } else {
                f64::INFINITY
            }
        ),
    ]);
    t.row(&[
        "AVF (cross-layer truth)".into(),
        pct2(avf_base.total()),
        pct2(avf_hard.total()),
        format!(
            "{:+.0}%",
            (avf_hard.total() / avf_base.total().max(1e-9) - 1.0) * 100.0
        ),
    ]);
    t.row(&[
        "execution cycles".into(),
        cyc_base.to_string(),
        cyc_hard.to_string(),
        format!("{:.1}x", cyc_hard as f64 / cyc_base as f64),
    ]);
    println!("{}", t.render());
    println!(
        "Detected-by-checks at the software layer: {}",
        pct(svf_hard.vf().detected)
    );
    println!("\nThe software view says the program got much safer. The cross-layer");
    println!("truth barely moves (or worsens): the 3.6x longer, duplicated run");
    println!("exposes hardware state for longer — the paper's protection pitfall.");
    println!("(At this demo sample size the AVF delta is inside the error margin;");
    println!("fig10_case_sha runs the full campaign and shows the AVF *increase*.)");
}
