//! Authoring a custom workload: write a program in VIR, run it on every
//! layer of the stack, then inject a targeted fault and watch it surface.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use vulnstack_compiler::{compile, CompileOpts};
use vulnstack_isa::Isa;
use vulnstack_kernel::SystemImage;
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::{CoreModel, FuncCore, OooCore};
use vulnstack_vir::interp::Interpreter;
use vulnstack_vir::ModuleBuilder;

/// Builds a dot-product program: out = Σ a[i] * b[i] over 64 elements.
fn build_module() -> vulnstack_vir::Module {
    let mut mb = ModuleBuilder::new("dotprod");
    let a: Vec<i32> = (0..64).map(|i| i * 3 + 1).collect();
    let b: Vec<i32> = (0..64).map(|i| 64 - i).collect();
    let ga = mb.global_words("a", &a);
    let gb = mb.global_words("b", &b);
    let out = mb.global_zeroed("out", 4, 4);

    let mut f = mb.function("main", 0);
    let pa = f.global_addr(ga);
    let pb = f.global_addr(gb);
    let acc = f.fresh();
    f.set_c(acc, 0);
    f.for_range(0, 64, |f, i| {
        let off = f.shl(i, 2);
        let ea = f.add(pa, off);
        let eb = f.add(pb, off);
        let va = f.load32(ea, 0);
        let vb = f.load32(eb, 0);
        let prod = f.mul(va, vb);
        let s = f.add(acc, prod);
        f.set(acc, s);
    });
    let po = f.global_addr(out);
    f.store32(acc, po, 0);
    f.sys_write(po, 4);
    f.sys_exit(0);
    f.ret(None);
    mb.finish_function(f);
    mb.finish().expect("module verifies")
}

fn main() {
    let module = build_module();

    // Layer 1: interpret the IR (what a software-level tool sees).
    let interp = Interpreter::new(&module).run().unwrap();
    let val = i32::from_le_bytes(interp.output[..4].try_into().unwrap());
    println!("interpreted result: {val}");

    // Layer 2: compile for both ISAs and run full-system functionally.
    for isa in [Isa::Va32, Isa::Va64] {
        let compiled = compile(&module, isa, &CompileOpts::default()).unwrap();
        let image = SystemImage::build(&compiled, &[]).unwrap();
        let out = FuncCore::new(&image).run(50_000_000);
        println!(
            "{isa}: {} instructions, output {:?} == interpreter: {}",
            out.instrs,
            i32::from_le_bytes(out.output[..4].try_into().unwrap()),
            out.output == interp.output
        );
    }

    // Layer 3: cycle-level run + one targeted microarchitectural fault.
    let compiled = compile(&module, Isa::Va64, &CompileOpts::default()).unwrap();
    let image = SystemImage::build(&compiled, &[]).unwrap();
    let cfg = CoreModel::A72.config();
    let golden = OooCore::new(&cfg, &image).run(10_000_000);
    println!(
        "A72: {} cycles, IPC {:.2}",
        golden.sim.cycles,
        golden.sim.instrs as f64 / golden.sim.cycles as f64
    );

    // Sweep a targeted flip in the `a` array across injection times: an
    // early flip is consumed by the dot product (Wrong Data); a flip after
    // the last read of that element is masked.
    println!("\nsweeping a flip of a[60]'s cached copy across injection cycles:");
    let target = vulnstack_kernel::memmap::USER_DATA + 60 * 4;
    for k in 1..=8 {
        let cycle = golden.sim.cycles * k / 9;
        let mut core = OooCore::new(&cfg, &image);
        core.run_until(cycle);
        let hit = core
            .mem
            .flip_addr_bit(vulnstack_microarch::cache::Level::L1d, target, 6)
            .is_some();
        core.run_until(10_000_000);
        let out = core.finish();
        let same = out.sim.output == golden.sim.output && out.sim.status == golden.sim.status;
        println!(
            "  cycle {cycle:>6}: {}{:10} fpm={:?}",
            if hit { "" } else { "(not cached) " },
            if same { "masked" } else { "corrupted" },
            out.fpm
        );
    }
    let _ = HwStructure::L1d;
}
