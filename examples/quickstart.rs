//! Quickstart: measure one workload's vulnerability at all three layers
//! of the system stack.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vulnstack_core::report::{pct, pct2, Table};
use vulnstack_gefin::{
    avf_campaign, default_threads, pvf_campaign, FuncPrepared, Prepared, PvfMode,
};
use vulnstack_isa::Isa;
use vulnstack_microarch::ooo::HwStructure;
use vulnstack_microarch::CoreModel;
use vulnstack_workloads::WorkloadId;

fn main() {
    let faults = 80;
    let threads = default_threads();
    let w = WorkloadId::Crc32.build();
    println!("workload: {} ({} bytes of input)", w.id, w.input.len());

    // Software layer (SVF): LLFI-style IR injection.
    let svf =
        vulnstack_llfi::svf_campaign(&w.module, &w.input, &w.expected_output, faults, 1, threads);
    println!("SVF  (software layer)      = {}", pct(svf.vf().total()));

    // Architecture layer (PVF): persistent architectural-state faults on
    // the functional full-system core (kernel included).
    let fprep = FuncPrepared::new(&w, Isa::Va64).expect("prepare");
    let pvf = pvf_campaign(&fprep, PvfMode::Wd, faults, 1, threads);
    println!("PVF  (architecture layer)  = {}", pct(pvf.vf().total()));

    // Cross-layer AVF: microarchitectural faults on the cycle-level
    // out-of-order core (A72-like), per structure.
    let prep = Prepared::new(&w, CoreModel::A72).expect("prepare");
    let mut t = Table::new(&["structure", "AVF", "HVF"]);
    for st in HwStructure::ALL {
        let r = avf_campaign(&prep, st, faults, 1, threads);
        t.row(&[st.name().into(), pct2(r.avf().total()), pct(r.hvf())]);
    }
    println!("\ncross-layer AVF per hardware structure (A72):");
    println!("{}", t.render());
    println!("Note the scale gap: most hardware faults never reach the software,");
    println!("which is exactly why software-level estimates cannot stand in for AVF.");
}
